#include "geom/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace decaylib::geom {
namespace {

TEST(SplitMix64Test, AdvancesState) {
  std::uint64_t state = 42;
  const std::uint64_t a = SplitMix64(state);
  const std::uint64_t b = SplitMix64(state);
  EXPECT_NE(a, b);
}

TEST(Mix64Test, DeterministicAndSpreads) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  EXPECT_NE(Mix64(1), Mix64(2));
  // Single-bit input changes flip roughly half the output bits (avalanche).
  const std::uint64_t x = Mix64(0x1234);
  const std::uint64_t y = Mix64(0x1235);
  const int flipped = __builtin_popcountll(x ^ y);
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(7);
  Rng b(8);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(1);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(RngTest, BelowIsUnbiasedAcrossSmallRange) {
  Rng rng(3);
  std::vector<int> counts(5, 0);
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    ++counts[static_cast<std::size_t>(rng.Below(5))];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.2, 0.02);
  }
}

TEST(RngTest, IntInInclusiveBounds) {
  Rng rng(4);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.IntIn(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values appear
}

TEST(RngTest, ChanceEdgeCases) {
  Rng rng(5);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_FALSE(rng.Chance(-1.0));
  EXPECT_TRUE(rng.Chance(1.0));
  EXPECT_TRUE(rng.Chance(2.0));
}

TEST(RngTest, ChanceFrequencyMatchesP) {
  Rng rng(6);
  int hits = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(7);
  double sum = 0.0;
  double sq = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.02);
  EXPECT_NEAR(sq / trials, 1.0, 0.03);
}

TEST(RngTest, NormalShifted) {
  Rng rng(8);
  double sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / trials, 10.0, 0.1);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(9);
  double sum = 0.0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    const double x = rng.Exponential(2.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / trials, 0.5, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(10);
  std::vector<int> v(20);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()) &&
               true)  // overwhelmingly unlikely to be identity
      << "shuffle returned the identity permutation";
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(11);
  Rng b = a.Split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace decaylib::geom
