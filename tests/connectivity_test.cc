#include "connectivity/aggregation.h"

#include <gtest/gtest.h>

#include <set>

#include "core/decay_space.h"
#include "env/propagation.h"
#include "geom/samplers.h"
#include "spaces/constructions.h"

namespace decaylib::connectivity {
namespace {

TEST(AggregationTreeTest, SpansAllNodes) {
  geom::Rng rng(1);
  const auto pts = geom::SampleUniform(20, 15.0, 15.0, rng);
  const core::DecaySpace space = core::DecaySpace::Geometric(pts, 3.0);
  const AggregationTree tree = BuildAggregationTree(space, 0);
  EXPECT_EQ(tree.uplinks.size(), 19u);
  EXPECT_EQ(tree.parent[0], -1);
  // Every non-sink node has a parent and reaches the sink.
  for (int v = 1; v < 20; ++v) {
    int cur = v;
    int hops = 0;
    while (cur != 0 && hops <= 20) {
      cur = tree.parent[static_cast<std::size_t>(cur)];
      ASSERT_GE(cur, 0);
      ++hops;
    }
    EXPECT_EQ(cur, 0) << "node " << v << " does not reach the sink";
  }
}

TEST(AggregationTreeTest, LineTreeFollowsTheLine) {
  // On a line with the sink at one end, the minimum-decay tree is the path.
  const core::DecaySpace space = spaces::LineSpace(6, 1.0, 2.0);
  const AggregationTree tree = BuildAggregationTree(space, 0);
  for (int v = 1; v < 6; ++v) {
    EXPECT_EQ(tree.parent[static_cast<std::size_t>(v)], v - 1);
  }
  EXPECT_DOUBLE_EQ(tree.total_decay, 5.0);  // five unit hops, decay 1 each
}

TEST(AggregationTreeTest, UplinksAreLeavesFirst) {
  geom::Rng rng(2);
  const auto pts = geom::SampleUniform(15, 12.0, 12.0, rng);
  const core::DecaySpace space = core::DecaySpace::Geometric(pts, 3.0);
  const AggregationTree tree = BuildAggregationTree(space, 3);
  // When link (c -> p) appears, p's own uplink must not have appeared yet.
  std::set<int> already_sent;
  for (const sinr::Link& link : tree.uplinks) {
    EXPECT_FALSE(already_sent.count(link.receiver))
        << "parent " << link.receiver << " sent before child "
        << link.sender;
    already_sent.insert(link.sender);
  }
}

TEST(ScheduleAggregationTest, ValidOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    geom::Rng rng(seed);
    const auto pts = geom::SampleMinDistance(16, 20.0, 20.0, 1.0, rng);
    const core::DecaySpace space = core::DecaySpace::Geometric(pts, 3.0);
    const AggregationSchedule result =
        ScheduleAggregation(space, 0, {2.0, 0.0});
    EXPECT_TRUE(result.convergecast_valid) << "seed " << seed;
    EXPECT_GE(result.slots, 1);
    EXPECT_LE(result.slots, static_cast<int>(pts.size()) - 1);
    // Every uplink scheduled exactly once.
    std::size_t total = 0;
    for (const auto& slot : result.schedule.slots) total += slot.size();
    EXPECT_EQ(total, pts.size() - 1);
  }
}

TEST(ScheduleAggregationTest, LineNeedsOneLinkPerSlotAtHighBeta) {
  // On a short line with large beta, consecutive uplinks conflict, and the
  // convergecast precedence alone forces a deep schedule.
  const core::DecaySpace space = spaces::LineSpace(5, 1.0, 3.0);
  const AggregationSchedule result = ScheduleAggregation(space, 0, {2.0, 0.0});
  EXPECT_TRUE(result.convergecast_valid);
  EXPECT_EQ(result.slots, 4);  // path: each hop waits for the previous
}

TEST(ScheduleAggregationTest, WorksOnEnvironmentSpaces) {
  geom::Rng rng(5);
  const auto pts = geom::SampleMinDistance(14, 18.0, 18.0, 1.2, rng);
  env::Environment office = env::Environment::OfficeGrid(18.0, 18.0, 2, 2);
  env::PropagationConfig config;
  config.alpha = 2.8;
  const core::DecaySpace space =
      env::BuildDecaySpace(office, config, env::PlaceIsotropic(pts));
  const AggregationSchedule result = ScheduleAggregation(space, 0, {2.0, 0.0});
  EXPECT_TRUE(result.convergecast_valid);
}

TEST(ScheduleAggregationTest, StarAggregatesInFewSlotsWhenSeparated) {
  // Well-separated leaves around a sink: many uplinks share slots.
  std::vector<geom::Vec2> pts{{0.0, 0.0}};
  for (int i = 0; i < 8; ++i) {
    const double angle = 2.0 * M_PI * i / 8.0;
    pts.push_back({100.0 * std::cos(angle), 100.0 * std::sin(angle)});
  }
  const core::DecaySpace space = core::DecaySpace::Geometric(pts, 3.0);
  const AggregationSchedule result = ScheduleAggregation(space, 0, {1.0, 0.0});
  EXPECT_TRUE(result.convergecast_valid);
  // All leaves transmit straight to the sink; SINR at the center with 8
  // equidistant senders is 1/7 < 1, so they cannot all share a slot, but
  // the schedule should still be much shorter than 8... unless conflicts
  // force singletons; just require validity and completeness here.
  std::size_t total = 0;
  for (const auto& slot : result.schedule.slots) total += slot.size();
  EXPECT_EQ(total, 8u);
}

}  // namespace
}  // namespace decaylib::connectivity
