#include "capacity/algorithm1.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "capacity/baselines.h"
#include "capacity/exact.h"
#include "core/decay_space.h"
#include "core/metricity.h"
#include "geom/rng.h"
#include "geom/samplers.h"
#include "graph/generators.h"
#include "graph/independent_set.h"
#include "sinr/power.h"
#include "spaces/constructions.h"

namespace decaylib::capacity {
namespace {

// Random planar instance: `links` short links scattered in a box.
struct Instance {
  core::DecaySpace space;
  std::vector<sinr::Link> links;

  Instance(int link_count, double box, double alpha, std::uint64_t seed)
      : space(1) {
    geom::Rng rng(seed);
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < link_count; ++i) {
      const geom::Vec2 s{rng.Uniform(0.0, box), rng.Uniform(0.0, box)};
      const double angle = rng.Uniform(0.0, 2.0 * M_PI);
      const double len = rng.Uniform(0.5, 1.5);
      pts.push_back(s);
      pts.push_back(s + geom::Vec2{len, 0.0}.Rotated(angle));
      links.push_back({2 * i, 2 * i + 1});
    }
    space = core::DecaySpace::Geometric(pts, alpha);
  }
};

TEST(Algorithm1Test, OutputIsFeasible) {
  const Instance inst(20, 25.0, 3.0, 1);
  const sinr::LinkSystem system(inst.space, inst.links, {1.0, 0.0});
  const auto result = RunAlgorithm1(system, 3.0);
  const auto power = sinr::UniformPower(system);
  EXPECT_TRUE(system.IsFeasible(result.selected, power));
  EXPECT_FALSE(result.selected.empty());
}

TEST(Algorithm1Test, SelectedSubsetOfAdmitted) {
  const Instance inst(20, 25.0, 3.0, 2);
  const sinr::LinkSystem system(inst.space, inst.links, {1.0, 0.0});
  const auto result = RunAlgorithm1(system, 3.0);
  const std::set<int> admitted(result.admitted.begin(), result.admitted.end());
  for (int v : result.selected) EXPECT_TRUE(admitted.count(v));
}

TEST(Algorithm1Test, MarkovHalfSurvives) {
  // Eqn. (5) in the Theorem 5 proof: |S| >= |X| / 2.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Instance inst(24, 20.0, 3.5, seed);
    const sinr::LinkSystem system(inst.space, inst.links, {1.0, 0.0});
    const auto result = RunAlgorithm1(system, 3.5);
    EXPECT_GE(2 * result.selected.size(), result.admitted.size())
        << "seed " << seed;
  }
}

TEST(Algorithm1Test, AdmittedSetIsSeparated) {
  const Instance inst(24, 20.0, 3.0, 3);
  const sinr::LinkSystem system(inst.space, inst.links, {1.0, 0.0});
  const double zeta = 3.0;
  const auto result = RunAlgorithm1(system, zeta);
  EXPECT_TRUE(system.IsSeparatedSet(result.admitted, zeta / 2.0, zeta));
}

TEST(Algorithm1Test, EmptyCandidatesGiveEmptyResult) {
  const Instance inst(5, 10.0, 3.0, 4);
  const sinr::LinkSystem system(inst.space, inst.links, {1.0, 0.0});
  const std::vector<int> none;
  const auto result = RunAlgorithm1(system, 3.0, none);
  EXPECT_TRUE(result.selected.empty());
  EXPECT_TRUE(result.admitted.empty());
}

TEST(BaselinesTest, GreedyFeasibleIsFeasibleAndMaximal) {
  const Instance inst(18, 18.0, 3.0, 5);
  const sinr::LinkSystem system(inst.space, inst.links, {1.0, 0.0});
  const auto chosen = GreedyFeasible(system);
  const auto power = sinr::UniformPower(system);
  EXPECT_TRUE(system.IsFeasible(chosen, power));
  // Maximality: adding any unchosen link breaks feasibility.
  std::set<int> in(chosen.begin(), chosen.end());
  for (int v = 0; v < system.NumLinks(); ++v) {
    if (in.count(v)) continue;
    std::vector<int> bigger = chosen;
    bigger.push_back(v);
    EXPECT_FALSE(system.IsFeasible(bigger, power)) << "link " << v;
  }
}

TEST(BaselinesTest, HalfAffectanceIsFeasible) {
  const Instance inst(18, 18.0, 3.0, 6);
  const sinr::LinkSystem system(inst.space, inst.links, {1.0, 0.0});
  const auto chosen = GreedyHalfAffectance(system);
  EXPECT_TRUE(system.IsFeasible(chosen, sinr::UniformPower(system)));
}

TEST(BaselinesTest, RandomFeasibleIsFeasible) {
  const Instance inst(18, 18.0, 3.0, 7);
  const sinr::LinkSystem system(inst.space, inst.links, {1.0, 0.0});
  geom::Rng rng(8);
  const auto all = sinr::AllLinks(system);
  const auto chosen = RandomFeasible(system, all, rng);
  EXPECT_TRUE(system.IsFeasible(chosen, sinr::UniformPower(system)));
}

TEST(ExactTest, SmallInstanceDominatesHeuristics) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance inst(12, 10.0, 3.0, seed);
    const sinr::LinkSystem system(inst.space, inst.links, {1.0, 0.0});
    const auto opt = ExactCapacityUniform(system);
    EXPECT_TRUE(system.IsFeasible(opt, sinr::UniformPower(system)));
    EXPECT_GE(opt.size(), GreedyFeasible(system).size());
    EXPECT_GE(opt.size(), RunAlgorithm1(system, 3.0).selected.size());
  }
}

TEST(ExactTest, SingleLinkInstance) {
  const Instance inst(1, 5.0, 3.0, 9);
  const sinr::LinkSystem system(inst.space, inst.links, {1.0, 0.0});
  EXPECT_EQ(ExactCapacityUniform(system).size(), 1u);
}

// Theorem 3 / Appendix A: on the graph construction, feasible sets (uniform
// power) are exactly independent sets; exact capacity == exact MIS.
class Theorem3Correspondence : public ::testing::TestWithParam<
                                   std::tuple<int, double>> {};

TEST_P(Theorem3Correspondence, CapacityEqualsMaxIndependentSet) {
  const auto [n, p] = GetParam();
  geom::Rng rng(static_cast<std::uint64_t>(n * 31 + static_cast<int>(p * 97)));
  const graph::Graph g = graph::RandomGnp(n, p, rng);
  const auto instance = spaces::Theorem3Instance(g);
  const sinr::LinkSystem system(instance.space,
                                sinr::LinksFromPairs(instance.links),
                                {1.0, 0.0});
  const auto mis = graph::MaxIndependentSet(g);
  const auto cap = ExactCapacityUniform(system);
  EXPECT_EQ(cap.size(), mis.size());
  // The MIS itself is feasible as a link set, and any feasible set is
  // independent in g.
  EXPECT_TRUE(system.IsFeasible(mis, sinr::UniformPower(system)));
  EXPECT_TRUE(g.IsIndependentSet(cap));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem3Correspondence,
    ::testing::Combine(::testing::Values(6, 9, 12),
                       ::testing::Values(0.2, 0.5, 0.8)));

TEST(Theorem3PowerControlTest, PowerControlDoesNotHelp) {
  // Theorem 3 holds "even if the algorithm is allowed arbitrary power
  // control": adjacent links block each other under any powers.
  geom::Rng rng(10);
  const graph::Graph g = graph::RandomGnp(8, 0.5, rng);
  const auto instance = spaces::Theorem3Instance(g);
  const sinr::LinkSystem system(instance.space,
                                sinr::LinksFromPairs(instance.links),
                                {1.0, 0.0});
  const auto all = sinr::AllLinks(system);
  const auto pc = ExactCapacityPowerControl(system, all);
  const auto mis = graph::MaxIndependentSet(g);
  EXPECT_EQ(pc.size(), mis.size());
}

// Theorem 6: the two-line construction has the same correspondence.
class Theorem6Correspondence : public ::testing::TestWithParam<double> {};

TEST_P(Theorem6Correspondence, CapacityEqualsMaxIndependentSet) {
  const double alpha = GetParam();
  geom::Rng rng(static_cast<std::uint64_t>(alpha * 1000));
  const graph::Graph g = graph::RandomGnp(8, 0.4, rng);
  const auto instance = spaces::Theorem6Instance(g, alpha);
  const sinr::LinkSystem system(instance.space,
                                sinr::LinksFromPairs(instance.links),
                                {1.0, 0.0});
  const auto mis = graph::MaxIndependentSet(g);
  const auto cap = ExactCapacityUniform(system);
  EXPECT_EQ(cap.size(), mis.size()) << "alpha=" << alpha;
  EXPECT_TRUE(g.IsIndependentSet(cap));
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, Theorem6Correspondence,
                         ::testing::Values(1.0, 2.0, 3.0));

TEST(Theorem6PowerControlTest, PowerControlDoesNotHelp) {
  geom::Rng rng(11);
  const graph::Graph g = graph::RandomGnp(7, 0.5, rng);
  const auto instance = spaces::Theorem6Instance(g, 2.0);
  const sinr::LinkSystem system(instance.space,
                                sinr::LinksFromPairs(instance.links),
                                {1.0, 0.0});
  const auto all = sinr::AllLinks(system);
  const auto pc = ExactCapacityPowerControl(system, all);
  EXPECT_EQ(pc.size(), graph::MaxIndependentSet(g).size());
}

}  // namespace
}  // namespace decaylib::capacity
