#include "sinr/power_control.h"

#include <gtest/gtest.h>

#include "core/decay_space.h"
#include "geom/rng.h"
#include "geom/samplers.h"
#include "sinr/power.h"

namespace decaylib::sinr {
namespace {

TEST(PowerControlTest, EmptyAndSingletonAreFeasible) {
  core::DecaySpace space(2, 5.0);
  space.SetSymmetric(0, 1, 2.0);
  const LinkSystem system(space, {{0, 1}}, {2.0, 0.0});
  const std::vector<int> empty;
  EXPECT_TRUE(FeasibleWithPowerControl(system, empty).feasible);
  const std::vector<int> one{0};
  EXPECT_TRUE(FeasibleWithPowerControl(system, one).feasible);
}

TEST(PowerControlTest, WellSeparatedPairFeasible) {
  const std::vector<geom::Vec2> pts{{0, 0}, {1, 0}, {50, 0}, {51, 0}};
  const core::DecaySpace space = core::DecaySpace::Geometric(pts, 2.0);
  const LinkSystem system(space, {{0, 1}, {2, 3}}, {2.0, 0.0});
  const auto result = FeasibleWithPowerControl(system, AllLinks(system));
  EXPECT_TRUE(result.feasible);
  EXPECT_LT(result.spectral_radius_estimate, 1.0);
}

TEST(PowerControlTest, CrossedPairInfeasibleUnderAnyPower) {
  // Each sender sits on top of the other link's receiver: the pairwise
  // product exceeds beta^2, so no powers work.
  core::DecaySpace space(4, 1.0);
  space.SetSymmetric(0, 1, 100.0);  // link 0: s=0, r=1
  space.SetSymmetric(2, 3, 100.0);  // link 1: s=2, r=3
  space.Set(0, 3, 1.0);             // s0 close to r1
  space.Set(2, 1, 1.0);             // s1 close to r0
  const LinkSystem system(space, {{0, 1}, {2, 3}}, {1.0, 0.0});
  EXPECT_GT(PairwiseAffectanceProduct(system, 0, 1), 1.0);
  EXPECT_TRUE(HasPairwiseObstruction(system, AllLinks(system)));
  const auto result = FeasibleWithPowerControl(system, AllLinks(system));
  EXPECT_FALSE(result.feasible);
}

TEST(PowerControlTest, NestedLinksNeedPowerControl) {
  // A short link inside a long link: uniform power fails (the long link's
  // receiver drowns), but decreasing the short link's power fixes it.
  // Positions: s_long=0, r_long=20; s_short=10, r_short=10.5.
  const std::vector<geom::Vec2> pts{{0, 0}, {20, 0}, {10, 0}, {10.5, 0}};
  const core::DecaySpace space = core::DecaySpace::Geometric(pts, 3.0);
  const LinkSystem system(space, {{0, 1}, {2, 3}}, {1.0, 0.0});
  const std::vector<int> both{0, 1};
  EXPECT_FALSE(system.IsSinrFeasible(both, UniformPower(system)));
  const auto result = FeasibleWithPowerControl(system, both);
  EXPECT_TRUE(result.feasible);
  // The returned power favours the long link.
  ASSERT_EQ(result.power.size(), 2u);
  EXPECT_GT(result.power[0], result.power[1]);
}

TEST(PowerControlTest, UniformFeasibleImpliesPowerControlFeasible) {
  geom::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const auto pts = geom::SampleUniform(12, 30.0, 30.0, rng);
    const core::DecaySpace space = core::DecaySpace::Geometric(pts, 3.0);
    std::vector<Link> links;
    for (int i = 0; i < 6; ++i) links.push_back({2 * i, 2 * i + 1});
    const LinkSystem system(space, links, {1.0, 0.0});
    // Find a uniform-feasible subset greedily.
    const PowerAssignment uniform = UniformPower(system);
    std::vector<int> S;
    for (int v = 0; v < 6; ++v) {
      S.push_back(v);
      if (!system.IsFeasible(S, uniform)) S.pop_back();
    }
    if (S.size() >= 2) {
      EXPECT_TRUE(FeasibleWithPowerControl(system, S).feasible)
          << "trial " << trial;
    }
  }
}

TEST(PowerControlTest, ReturnedPowerIsNormalized) {
  const std::vector<geom::Vec2> pts{{0, 0}, {1, 0}, {30, 0}, {31, 0}};
  const core::DecaySpace space = core::DecaySpace::Geometric(pts, 2.0);
  const LinkSystem system(space, {{0, 1}, {2, 3}}, {2.0, 0.0});
  const auto result = FeasibleWithPowerControl(system, AllLinks(system));
  ASSERT_TRUE(result.feasible);
  double top = 0.0;
  for (double p : result.power) top = std::max(top, p);
  EXPECT_DOUBLE_EQ(top, 1.0);
}

TEST(PowerControlTest, WithNoiseConvergesToFiniteAssignment) {
  const std::vector<geom::Vec2> pts{{0, 0}, {1, 0}, {40, 0}, {41, 0}};
  const core::DecaySpace space = core::DecaySpace::Geometric(pts, 2.0);
  const LinkSystem system(space, {{0, 1}, {2, 3}}, {2.0, 1e-4});
  const auto result = FeasibleWithPowerControl(system, AllLinks(system));
  EXPECT_TRUE(result.feasible);
  // The fixed point must actually satisfy the SINR constraints.
  PowerAssignment full(2, 0.0);
  full[0] = result.power[0];
  full[1] = result.power[1];
  // Scale up so noise is negligible relative to the fixed point... instead
  // just verify with the raw checker after scaling to overcome noise.
  PowerAssignment scaled = ScaledToOvercomeNoise(system, full, 10.0);
  (void)scaled;  // positivity is what matters here
  EXPECT_GT(result.power[0], 0.0);
  EXPECT_GT(result.power[1], 0.0);
}

TEST(PairwiseObstructionTest, CleanPairHasNoObstruction) {
  const std::vector<geom::Vec2> pts{{0, 0}, {1, 0}, {50, 0}, {51, 0}};
  const core::DecaySpace space = core::DecaySpace::Geometric(pts, 2.0);
  const LinkSystem system(space, {{0, 1}, {2, 3}}, {2.0, 0.0});
  EXPECT_FALSE(HasPairwiseObstruction(system, AllLinks(system)));
}

// --- cached (KernelCache) power control vs the naive LinkSystem path -------
//
// The cached oracles run on the kernel's normalised-gain / cross-decay
// matrices; the contract is bit-for-bit agreement with the naive versions
// (EXPECT_EQ on doubles), on random instances across noise regimes and
// subset sizes.

TEST(CachedPowerControlTest, MatchesNaiveOnRandomInstances) {
  geom::Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    const int link_count = 4 + trial;
    const auto pts = geom::SampleUniform(2 * link_count, 25.0, 25.0, rng);
    const core::DecaySpace space = core::DecaySpace::Geometric(pts, 3.0);
    std::vector<Link> links;
    for (int i = 0; i < link_count; ++i) links.push_back({2 * i, 2 * i + 1});
    const double noise = trial % 2 == 0 ? 0.0 : 1e-4;
    const LinkSystem system(space, links, {1.5, noise});
    const KernelCache kernel(system, UniformPower(system));

    // Pairwise product: identical expression over cached loads.
    for (int v = 0; v < link_count; ++v) {
      for (int w = 0; w < link_count; ++w) {
        if (v == w) continue;
        EXPECT_EQ(PairwiseAffectanceProduct(system, v, w),
                  PairwiseAffectanceProduct(kernel, v, w))
            << "trial " << trial << " pair " << v << "," << w;
      }
    }

    // Feasibility and obstruction over the full set and growing prefixes.
    std::vector<int> S;
    for (int v = 0; v < link_count; ++v) {
      S.push_back(v);
      EXPECT_EQ(HasPairwiseObstruction(system, S),
                HasPairwiseObstruction(kernel, S))
          << "trial " << trial << " |S|=" << S.size();
      const PowerControlResult naive = FeasibleWithPowerControl(system, S);
      const PowerControlResult cached = FeasibleWithPowerControl(kernel, S);
      EXPECT_EQ(naive.feasible, cached.feasible)
          << "trial " << trial << " |S|=" << S.size();
      EXPECT_EQ(naive.iterations, cached.iterations);
      EXPECT_EQ(naive.spectral_radius_estimate,
                cached.spectral_radius_estimate);
      ASSERT_EQ(naive.power.size(), cached.power.size());
      for (std::size_t i = 0; i < naive.power.size(); ++i) {
        EXPECT_EQ(naive.power[i], cached.power[i]) << "entry " << i;
      }
    }
  }
}

TEST(CachedPowerControlTest, MatchesNaiveThroughArenaRebuild) {
  geom::Rng rng(9);
  const auto pts = geom::SampleUniform(20, 20.0, 20.0, rng);
  const core::DecaySpace space = core::DecaySpace::Geometric(pts, 2.5);
  std::vector<Link> links;
  for (int i = 0; i < 10; ++i) links.push_back({2 * i, 2 * i + 1});
  const LinkSystem system(space, links, {1.0, 0.0});

  KernelArena arena;
  arena.Rebuild(system, UniformPower(system));  // dirty the slot
  const KernelCache& kernel = arena.Rebuild(system, UniformPower(system));
  const std::vector<int> all = AllLinks(system);
  const PowerControlResult naive = FeasibleWithPowerControl(system, all);
  const PowerControlResult cached = FeasibleWithPowerControl(kernel, all);
  EXPECT_EQ(naive.feasible, cached.feasible);
  EXPECT_EQ(naive.iterations, cached.iterations);
  ASSERT_EQ(naive.power.size(), cached.power.size());
  for (std::size_t i = 0; i < naive.power.size(); ++i) {
    EXPECT_EQ(naive.power[i], cached.power[i]) << "entry " << i;
  }
  EXPECT_EQ(HasPairwiseObstruction(system, all),
            HasPairwiseObstruction(kernel, all));
}

TEST(CachedPowerControlTest, CrossedPairInfeasibleThroughCache) {
  core::DecaySpace space(4, 1.0);
  space.SetSymmetric(0, 1, 100.0);
  space.SetSymmetric(2, 3, 100.0);
  space.Set(0, 3, 1.0);
  space.Set(2, 1, 1.0);
  const LinkSystem system(space, {{0, 1}, {2, 3}}, {1.0, 0.0});
  const KernelCache kernel(system, UniformPower(system));
  EXPECT_GT(PairwiseAffectanceProduct(kernel, 0, 1), 1.0);
  EXPECT_TRUE(HasPairwiseObstruction(kernel, AllLinks(system)));
  EXPECT_FALSE(FeasibleWithPowerControl(kernel, AllLinks(system)).feasible);
}

}  // namespace
}  // namespace decaylib::sinr
