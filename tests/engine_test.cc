#include "engine/batch_runner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "core/status.h"
#include "engine/report.h"
#include "engine/scenario.h"
#include "obs/bench_harness.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace decaylib::engine {
namespace {

// Shrinks a spec to test size.
ScenarioSpec Small(ScenarioSpec spec, int links = 12, int instances = 3) {
  spec.links = links;
  spec.instances = instances;
  return spec;
}

TEST(ScenarioRegistryTest, TopologiesRegistered) {
  const std::vector<std::string> names = RegisteredTopologies();
  EXPECT_GE(names.size(), 4u);
  for (const std::string& name : names) {
    EXPECT_TRUE(IsRegisteredTopology(name)) << name;
  }
  EXPECT_FALSE(IsRegisteredTopology("no_such_topology"));
}

TEST(ScenarioRegistryTest, BuiltinsAreWellFormed) {
  const std::vector<ScenarioSpec> specs = BuiltinScenarios();
  EXPECT_GE(specs.size(), 4u);
  std::set<std::string> seen;
  for (const ScenarioSpec& spec : specs) {
    EXPECT_TRUE(IsRegisteredTopology(spec.topology)) << spec.name;
    EXPECT_TRUE(seen.insert(spec.name).second) << "duplicate " << spec.name;
    EXPECT_TRUE(FindBuiltinScenario(spec.name).has_value());
  }
  EXPECT_FALSE(FindBuiltinScenario("no_such_scenario").has_value());
}

TEST(ScenarioInstanceTest, BuildIsDeterministic) {
  const ScenarioSpec spec = Small(BuiltinScenarios().at(1), 10, 2);
  const ScenarioInstance a = BuildInstance(spec, 1);
  const ScenarioInstance b = BuildInstance(spec, 1);
  ASSERT_EQ(a.space().size(), b.space().size());
  const auto raw_a = a.space().Raw();
  const auto raw_b = b.space().Raw();
  for (std::size_t i = 0; i < raw_a.size(); ++i) {
    EXPECT_EQ(raw_a[i], raw_b[i]) << "entry " << i;
  }
  EXPECT_EQ(a.system().links(), b.system().links());
  EXPECT_EQ(a.power(), b.power());
  EXPECT_EQ(a.zeta(), b.zeta());
}

TEST(ScenarioInstanceTest, DistinctIndicesGiveDistinctInstances) {
  const ScenarioSpec spec = Small(BuiltinScenarios().front(), 10, 2);
  const ScenarioInstance a = BuildInstance(spec, 0);
  const ScenarioInstance b = BuildInstance(spec, 1);
  EXPECT_NE(std::vector<double>(a.space().Raw().begin(), a.space().Raw().end()),
            std::vector<double>(b.space().Raw().begin(), b.space().Raw().end()));
}

TEST(ScenarioInstanceTest, PairingCoversEveryNodeExactlyOnce) {
  const ScenarioSpec spec = Small(BuiltinScenarios().front(), 16, 1);
  const ScenarioInstance instance = BuildInstance(spec, 0);
  ASSERT_EQ(instance.NumLinks(), 16);
  std::set<int> endpoints;
  for (const sinr::Link& link : instance.system().links()) {
    EXPECT_TRUE(endpoints.insert(link.sender).second);
    EXPECT_TRUE(endpoints.insert(link.receiver).second);
    // Orientation: the link's own decay is the weaker of the two directions.
    EXPECT_LE(instance.space()(link.sender, link.receiver),
              instance.space()(link.receiver, link.sender));
  }
  EXPECT_EQ(endpoints.size(), 32u);
  EXPECT_EQ(*endpoints.begin(), 0);
  EXPECT_EQ(*endpoints.rbegin(), 31);
}

// Property: grid/MNN pairing is the sort-greedy matching, across every
// registered topology, several deployment sizes and many seeds.  Only
// shadowing-free specs route through the grid (sigma_db > 0 falls back to
// the sort), but the equality must hold wherever the dispatch can go.
TEST(ScenarioPairingTest, GridPairingEqualsSortGreedyAcrossTopologies) {
  for (const std::string& topology : RegisteredTopologies()) {
    for (const int links : {4, 9, 24}) {
      for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        ScenarioSpec spec;
        spec.name = "pairing_property";
        spec.topology = topology;
        spec.links = links;
        spec.sigma_db = 0.0;
        spec.seed = seed;
        const ScenarioGeometry sorted =
            BuildGeometry(spec, 0, PairingMode::kSortGreedy);
        const ScenarioGeometry gridded =
            BuildGeometry(spec, 0, PairingMode::kAuto);
        ASSERT_EQ(sorted.points.size(), 2u * static_cast<std::size_t>(links))
            << topology;
        EXPECT_EQ(sorted.links, gridded.links)
            << topology << " links=" << links << " seed=" << seed;
        // The standalone pairing functions agree too (same space/points).
        EXPECT_EQ(PairLinksByDecayGrid(*sorted.space, sorted.points,
                                       spec.alpha),
                  PairLinksByDecay(*sorted.space))
            << topology << " links=" << links << " seed=" << seed;
      }
    }
  }
}

// Shadowed specs cannot use the distance grid (decay is no longer monotone
// in distance); the auto dispatch must fall back and stay identical.
TEST(ScenarioPairingTest, ShadowedSpecsFallBackToSortGreedy) {
  ScenarioSpec spec;
  spec.name = "pairing_shadowed";
  spec.topology = "uniform";
  spec.links = 16;
  spec.sigma_db = 6.0;
  spec.seed = 42;
  const ScenarioGeometry a = BuildGeometry(spec, 0, PairingMode::kAuto);
  const ScenarioGeometry b = BuildGeometry(spec, 0, PairingMode::kSortGreedy);
  EXPECT_EQ(a.links, b.links);
}

// The geometry key collects exactly the sampling-relevant fields.
TEST(GeometryKeyTest, NonGeometricFieldsShareAKey) {
  ScenarioSpec spec = Small(BuiltinScenarios().front(), 10, 2);
  ScenarioSpec cfg = spec;
  cfg.power_tau = 1.0;
  cfg.beta = 2.0;
  cfg.noise = 0.05;
  cfg.zeta = 5.0;
  cfg.instances = 7;
  cfg.name = "renamed";
  EXPECT_EQ(GeometryKeyOf(spec), GeometryKeyOf(cfg));
  cfg.dynamics.lambda = 0.7;  // dynamics knobs are non-geometric too
  cfg.dynamics.regret_penalty = 2.0;
  EXPECT_EQ(GeometryKeyOf(spec), GeometryKeyOf(cfg));
  for (const auto& mutate : std::vector<void (*)(ScenarioSpec&)>{
           [](ScenarioSpec& s) { s.topology = "grid"; },
           [](ScenarioSpec& s) { s.links += 1; },
           [](ScenarioSpec& s) { s.alpha += 0.5; },
           [](ScenarioSpec& s) { s.sigma_db = 3.0; },
           [](ScenarioSpec& s) { s.symmetric_shadowing = false; },
           [](ScenarioSpec& s) { s.seed += 1; },
           [](ScenarioSpec& s) { s.hotspots += 1; },
           [](ScenarioSpec& s) { s.cluster_sigma += 0.5; },
           [](ScenarioSpec& s) { s.corridor_width += 0.5; }}) {
    ScenarioSpec changed = spec;
    mutate(changed);
    EXPECT_FALSE(GeometryKeyOf(spec) == GeometryKeyOf(changed));
  }
}

// A cached geometry configures to the bit-identical instance BuildInstance
// produces, reuse only kicks in on key-equal specs, and the measured
// metricity is memoised in the slot.
TEST(GeometryCacheTest, ReuseIsBitIdenticalAndKeyed) {
  ScenarioSpec spec = Small(BuiltinScenarios().front(), 10, 3);
  GeometryCache cache;
  cache.Prepare(spec);
  for (int i = 0; i < spec.instances; ++i) {
    const ScenarioInstance direct = BuildInstance(spec, i);
    const ScenarioInstance cached =
        ConfigureInstance(spec, cache.Acquire(spec, i));
    ASSERT_EQ(cached.space().size(), direct.space().size());
    const auto raw_a = cached.space().Raw();
    const auto raw_b = direct.space().Raw();
    for (std::size_t k = 0; k < raw_a.size(); ++k) {
      ASSERT_EQ(raw_a[k], raw_b[k]);
    }
    EXPECT_EQ(cached.system().links(), direct.system().links());
    EXPECT_EQ(cached.power(), direct.power());
    EXPECT_EQ(cached.zeta(), direct.zeta());
  }
  EXPECT_EQ(cache.builds(), 3);
  EXPECT_EQ(cache.reuses(), 0);

  // Non-geometric change: same key, slots stay warm.
  ScenarioSpec power = spec;
  power.power_tau = 0.5;
  power.beta = 1.5;
  cache.Prepare(power);
  for (int i = 0; i < power.instances; ++i) {
    const ScenarioInstance direct = BuildInstance(power, i);
    const ScenarioInstance cached =
        ConfigureInstance(power, cache.Acquire(power, i));
    EXPECT_EQ(cached.power(), direct.power());
    EXPECT_EQ(cached.zeta(), direct.zeta());
    EXPECT_EQ(cached.system().links(), direct.system().links());
  }
  EXPECT_EQ(cache.builds(), 3);
  EXPECT_EQ(cache.reuses(), 3);

  // Geometric change: key differs, every slot rebuilds.
  ScenarioSpec rekeyed = spec;
  rekeyed.alpha += 0.5;
  cache.Prepare(rekeyed);
  (void)cache.Acquire(rekeyed, 0);
  EXPECT_EQ(cache.builds(), 4);
  EXPECT_EQ(cache.reuses(), 3);
}

TEST(GeometryCacheTest, MeasuredZetaIsMemoised) {
  ScenarioSpec spec = Small(BuiltinScenarios().front(), 6, 1);
  spec.zeta = -1.0;
  GeometryCache cache;
  cache.Prepare(spec);
  const ScenarioGeometry& geometry = cache.Acquire(spec, 0);
  EXPECT_TRUE(geometry.zeta_measured);
  const ScenarioInstance direct = BuildInstance(spec, 0);
  const ScenarioInstance cached = ConfigureInstance(spec, geometry);
  EXPECT_EQ(cached.zeta(), direct.zeta());
  // An explicit-zeta cell reusing the slot keeps the measurement around.
  ScenarioSpec explicit_zeta = spec;
  explicit_zeta.zeta = 4.0;
  cache.Prepare(explicit_zeta);
  EXPECT_TRUE(cache.Acquire(explicit_zeta, 0).zeta_measured);
  EXPECT_EQ(cache.reuses(), 1);
}

TEST(GeometryCacheTest, LruGenerationsHitAndEvictDeterministically) {
  // Two interleaved keys K1 K2 K1 K2 -- the access pattern of a sweep
  // whose geometric axis is not the slowest.  A single generation
  // thrashes: every Prepare after the first replaces the cached key.  Two
  // generations serve the whole second pass warm.
  ScenarioSpec k1 = Small(BuiltinScenarios().front(), 8, 2);
  ScenarioSpec k2 = k1;
  k2.alpha += 0.5;  // geometric change: distinct GeometryKey

  const std::vector<const ScenarioSpec*> order = {&k1, &k2, &k1, &k2};
  auto drive = [&](GeometryCache& cache) {
    for (const ScenarioSpec* s : order) {
      cache.Prepare(*s);
      for (int i = 0; i < s->instances; ++i) (void)cache.Acquire(*s, i);
    }
  };

  GeometryCache shallow;  // default capacity 1
  drive(shallow);
  EXPECT_EQ(shallow.builds(), 8);
  EXPECT_EQ(shallow.reuses(), 0);
  EXPECT_EQ(shallow.generation_hits(), 0);
  EXPECT_EQ(shallow.evictions(), 3);

  GeometryCache deep;
  deep.SetGenerations(2);
  drive(deep);
  EXPECT_EQ(deep.builds(), 4);
  EXPECT_EQ(deep.reuses(), 4);
  EXPECT_EQ(deep.generation_hits(), 2);
  EXPECT_EQ(deep.evictions(), 0);

  // A warm generation hit serves the bit-identical geometry a cold build
  // would have produced.
  deep.Prepare(k1);
  const ScenarioInstance direct = BuildInstance(k1, 1);
  const ScenarioInstance warm = ConfigureInstance(k1, deep.Acquire(k1, 1));
  const auto raw_a = warm.space().Raw();
  const auto raw_b = direct.space().Raw();
  ASSERT_EQ(raw_a.size(), raw_b.size());
  for (std::size_t k = 0; k < raw_a.size(); ++k) ASSERT_EQ(raw_a[k], raw_b[k]);
  EXPECT_EQ(warm.system().links(), direct.system().links());

  // Shrinking evicts the excess least recently used generation (k2; k1 was
  // just spliced to the front) without touching the survivor's slots.
  deep.SetGenerations(1);
  EXPECT_EQ(deep.evictions(), 1);
  const long long builds_before = deep.builds();
  deep.Prepare(k1);
  (void)deep.Acquire(k1, 0);
  EXPECT_EQ(deep.builds(), builds_before);  // front generation stayed warm
}

TEST(GeometryCacheTest, WarmSlotReferencesSurviveSplices) {
  // Generations are list nodes and slots live in deques: a reference
  // Acquire handed out stays valid while its generation stays cached, even
  // as other keys rotate through the LRU and the list is respliced.
  ScenarioSpec k1 = Small(BuiltinScenarios().front(), 8, 2);
  ScenarioSpec k2 = k1;
  k2.alpha += 0.5;

  GeometryCache cache;
  cache.SetGenerations(2);
  cache.Prepare(k1);
  const ScenarioGeometry& pinned = cache.Acquire(k1, 0);
  const std::vector<double> raw_before(pinned.space->Raw().begin(),
                                       pinned.space->Raw().end());

  cache.Prepare(k2);
  (void)cache.Acquire(k2, 0);
  cache.Prepare(k1);  // splices k1 back to the front
  (void)cache.Acquire(k1, 1);

  const auto raw_after = pinned.space->Raw();
  ASSERT_EQ(raw_after.size(), raw_before.size());
  for (std::size_t k = 0; k < raw_before.size(); ++k) {
    EXPECT_EQ(raw_after[k], raw_before[k]);
  }
}

// The engine's core contract: the deterministic aggregate report of a batch
// does not depend on the worker-pool size.
TEST(BatchRunnerTest, AggregateBitIdenticalAcrossThreadCounts) {
  std::vector<ScenarioSpec> specs;
  for (const ScenarioSpec& spec : BuiltinScenarios()) {
    specs.push_back(Small(spec, 12, 4));
  }

  BatchConfig serial;
  serial.threads = 1;
  BatchConfig pooled;
  pooled.threads = 4;

  const auto a = BatchRunner(serial).Run(specs);
  const auto b = BatchRunner(pooled).Run(specs);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a[s].aggregate, b[s].aggregate) << specs[s].name;
  }
  EXPECT_EQ(AggregateSignature(a), AggregateSignature(b));
}

// Registry round trip: every builtin scenario builds, runs every task, and
// produces finite, in-range statistics at small n.
TEST(BatchRunnerTest, RegistryRoundTripFiniteStats) {
  BatchConfig config;
  config.threads = 2;
  const BatchRunner runner(config);
  for (const ScenarioSpec& builtin : BuiltinScenarios()) {
    const ScenarioSpec spec = Small(builtin, 10, 2);
    const ScenarioResult result = runner.RunOne(spec);
    ASSERT_EQ(result.instances.size(), 2u) << spec.name;
    for (const InstanceRecord& rec : result.instances) {
      EXPECT_EQ(rec.links, 10) << spec.name;
      EXPECT_TRUE(std::isfinite(rec.zeta)) << spec.name;
      EXPECT_GT(rec.zeta, 0.0) << spec.name;
      EXPECT_GE(rec.alg1_size, 1) << spec.name;
      EXPECT_LE(rec.alg1_size, rec.links) << spec.name;
      EXPECT_LE(rec.alg1_size, rec.alg1_admitted) << spec.name;
      EXPECT_TRUE(rec.alg1_feasible) << spec.name;
      EXPECT_GE(rec.greedy_size, 1) << spec.name;
      EXPECT_LE(rec.greedy_size, rec.links) << spec.name;
      EXPECT_TRUE(std::isfinite(rec.weighted_value)) << spec.name;
      EXPECT_GT(rec.weighted_value, 0.0) << spec.name;
      EXPECT_GE(rec.weighted_size, 1) << spec.name;
      EXPECT_GE(rec.partition_classes, 1) << spec.name;
      EXPECT_LE(rec.partition_classes, rec.alg1_size) << spec.name;
      EXPECT_GE(rec.schedule_slots, 1) << spec.name;
      EXPECT_LE(rec.schedule_slots, rec.links) << spec.name;
      EXPECT_TRUE(rec.schedule_valid) << spec.name;
    }
    for (const auto& [name, m] : result.aggregate) {
      if (m.count == 0) continue;
      EXPECT_TRUE(std::isfinite(m.sum)) << spec.name << "/" << name;
      EXPECT_TRUE(std::isfinite(m.min)) << spec.name << "/" << name;
      EXPECT_TRUE(std::isfinite(m.max)) << spec.name << "/" << name;
      EXPECT_LE(m.min, m.max) << spec.name << "/" << name;
    }
  }
}

// The power-control task records in-range gap statistics, and the cached
// oracle admits at least every singleton.
TEST(BatchRunnerTest, PowerControlTaskRecordsGapStatistics) {
  BatchConfig config;
  config.threads = 2;
  config.tasks = {TaskKind::kGreedyBaseline, TaskKind::kPowerControl};
  const ScenarioSpec spec = Small(BuiltinScenarios().front(), 10, 3);
  const ScenarioResult result = BatchRunner(config).RunOne(spec);
  for (const InstanceRecord& rec : result.instances) {
    EXPECT_GE(rec.pc_greedy_size, 1);
    EXPECT_LE(rec.pc_greedy_size, rec.links);
    EXPECT_TRUE(rec.pc_all_feasible == 0 || rec.pc_all_feasible == 1);
    EXPECT_TRUE(rec.pc_obstructed == 0 || rec.pc_obstructed == 1);
  }
  bool found_gap = false;
  for (const auto& [name, m] : result.aggregate) {
    if (name == "pc_gain_vs_uniform" && m.count > 0) found_gap = true;
  }
  EXPECT_TRUE(found_gap);
}

// Arena-backed kernel rebuilds must be invisible in the deterministic
// aggregate: a batch run through per-worker arenas matches a batch with
// per-instance allocation bit-for-bit.
TEST(BatchRunnerTest, ArenaReuseBitIdenticalToPerInstanceKernels) {
  std::vector<ScenarioSpec> specs;
  for (const ScenarioSpec& spec : BuiltinScenarios()) {
    specs.push_back(Small(spec, 10, 3));
  }

  BatchConfig plain;
  plain.threads = 2;
  const auto reference = BatchRunner(plain).Run(specs);

  std::vector<sinr::KernelArena> arenas(2);
  BatchConfig with_arenas = plain;
  with_arenas.arenas = std::span(arenas);
  const auto arena_run = BatchRunner(with_arenas).Run(specs);

  EXPECT_EQ(AggregateSignature(reference), AggregateSignature(arena_run));
  long long rebuilds = 0;
  for (const sinr::KernelArena& arena : arenas) rebuilds += arena.rebuilds();
  long long instances = 0;
  for (const ScenarioSpec& spec : specs) instances += spec.instances;
  EXPECT_EQ(rebuilds, instances);
}

// Geometry-cache-backed builds must be invisible in the deterministic
// aggregate, across thread counts, and the cache must actually engage on
// the key-equal run of specs.
TEST(BatchRunnerTest, GeometryCacheBitIdenticalAcrossThreadCounts) {
  std::vector<ScenarioSpec> specs;
  ScenarioSpec base = Small(BuiltinScenarios().front(), 10, 3);
  for (const double beta : {1.0, 1.5, 2.0}) {
    base.beta = beta;
    base.name = "geom_reuse_beta";
    specs.push_back(base);
  }

  BatchConfig plain;
  plain.threads = 2;
  const auto reference = BatchRunner(plain).Run(specs);

  for (const int threads : {1, 4}) {
    GeometryCache cache;
    BatchConfig with_cache;
    with_cache.threads = threads;
    with_cache.geometry = &cache;
    const auto cached_run = BatchRunner(with_cache).Run(specs);
    EXPECT_EQ(AggregateSignature(reference), AggregateSignature(cached_run))
        << "threads=" << threads;
    EXPECT_EQ(cache.builds(), 3);   // first spec samples its 3 instances
    EXPECT_EQ(cache.reuses(), 6);   // the two beta variants reuse them
  }
}

TEST(BatchRunnerTest, TaskSubsetLeavesOtherMetricsUnset) {
  BatchConfig config;
  config.threads = 1;
  config.tasks = {TaskKind::kAlgorithm1};
  const ScenarioSpec spec = Small(BuiltinScenarios().front(), 8, 1);
  const ScenarioResult result = BatchRunner(config).RunOne(spec);
  const InstanceRecord& rec = result.instances.front();
  EXPECT_GE(rec.alg1_size, 0);
  EXPECT_EQ(rec.greedy_size, -1);
  EXPECT_EQ(rec.weighted_size, -1);
  EXPECT_EQ(rec.partition_classes, -1);
  EXPECT_EQ(rec.schedule_slots, -1);
  EXPECT_EQ(rec.pc_greedy_size, -1);
  EXPECT_EQ(rec.queue_throughput, -1.0);
  EXPECT_EQ(rec.queue_unstable, -1);
  EXPECT_EQ(rec.regret_successes, -1.0);
}

// Shrinks the dynamics workloads to test size alongside the usual spec
// shrink (the defaults simulate 400 slots/rounds per instance).
ScenarioSpec SmallDynamics(ScenarioSpec spec, int links = 10,
                           int instances = 3) {
  spec = Small(std::move(spec), links, instances);
  spec.dynamics.queue_slots = 150;
  spec.dynamics.regret_rounds = 150;
  return spec;
}

// The dynamics tasks obey the engine's core contract: their rng streams
// derive from (spec.seed, instance index) alone, so the aggregate is
// bit-identical across worker-pool sizes.
TEST(BatchRunnerTest, DynamicsTasksBitIdenticalAcrossThreadCounts) {
  std::vector<ScenarioSpec> specs;
  for (const ScenarioSpec& spec : BuiltinScenarios()) {
    specs.push_back(SmallDynamics(spec, 10, 4));
  }
  BatchConfig serial;
  serial.threads = 1;
  serial.tasks = {TaskKind::kQueue, TaskKind::kRegret};
  BatchConfig pooled = serial;
  pooled.threads = 4;

  const auto a = BatchRunner(serial).Run(specs);
  const auto b = BatchRunner(pooled).Run(specs);
  EXPECT_EQ(AggregateSignature(a), AggregateSignature(b));
  // The signature actually covers the dynamics metrics.
  EXPECT_NE(AggregateSignature(a).find("queue_throughput"), std::string::npos);
  EXPECT_NE(AggregateSignature(a).find("regret_successes"), std::string::npos);
}

// Dynamics records stay in range: throughput can never exceed the offered
// load (packets served <= packets arrived, modulo the warmup window), the
// instability flag is boolean, and the regret statistics are finite.
TEST(BatchRunnerTest, DynamicsTasksRecordInRangeStatistics) {
  BatchConfig config;
  config.threads = 2;
  config.tasks = {TaskKind::kQueue, TaskKind::kRegret};
  ScenarioSpec spec = SmallDynamics(BuiltinScenarios().front(), 10, 3);
  spec.dynamics.lambda = 0.2;
  const ScenarioResult result = BatchRunner(config).RunOne(spec);
  for (const InstanceRecord& rec : result.instances) {
    EXPECT_GE(rec.queue_throughput, 0.0);
    // Stable or not, the scheduler cannot serve more than one packet per
    // link per slot.
    EXPECT_LE(rec.queue_throughput, static_cast<double>(rec.links));
    EXPECT_GE(rec.queue_mean_queue, 0.0);
    EXPECT_GT(rec.queue_backlog_growth, 0.0);
    EXPECT_TRUE(rec.queue_unstable == 0 || rec.queue_unstable == 1);
    EXPECT_TRUE(std::isfinite(rec.regret_successes));
    EXPECT_GE(rec.regret_successes, 0.0);
    EXPECT_GE(rec.regret_transmit_rate, 0.0);
    EXPECT_LE(rec.regret_transmit_rate, 1.0);
  }
  for (const char* metric : {"queue_throughput", "queue_mean_queue",
                             "queue_backlog_growth", "queue_unstable",
                             "regret_successes", "regret_transmit_rate"}) {
    const MetricSummary* m = FindAggregateMetric(result, metric);
    ASSERT_NE(m, nullptr) << metric;
    EXPECT_EQ(m->count, 3) << metric;
  }
}

// Invalid dynamics knobs are rejected by the engine before any worker
// starts -- as recoverable core::StatusError now, so a sweep can isolate
// the bad cell instead of losing the process.
TEST(BatchRunnerTest, InvalidDynamicsConfigRejected) {
  BatchConfig config;
  config.threads = 1;
  config.tasks = {TaskKind::kQueue, TaskKind::kRegret};
  const BatchRunner runner(config);
  const auto expect_invalid = [&](const ScenarioSpec& spec,
                                  const std::string& needle) {
    try {
      runner.RunOne(spec);
      FAIL() << "expected StatusError mentioning '" << needle << "'";
    } catch (const core::StatusError& e) {
      EXPECT_EQ(e.status().code(), core::StatusCode::kInvalidArgument);
      EXPECT_NE(e.status().message().find(needle), std::string::npos)
          << e.status().message();
    }
  };
  ScenarioSpec bad_lambda = SmallDynamics(BuiltinScenarios().front(), 6, 1);
  bad_lambda.dynamics.lambda = 1.5;
  expect_invalid(bad_lambda, "Bernoulli");
  ScenarioSpec bad_penalty = SmallDynamics(BuiltinScenarios().front(), 6, 1);
  bad_penalty.dynamics.regret_penalty = -1.0;
  expect_invalid(bad_penalty, "penalty");
  ScenarioSpec bad_rate = SmallDynamics(BuiltinScenarios().front(), 6, 1);
  bad_rate.dynamics.regret_learning_rate = 1.0;
  expect_invalid(bad_rate, "learning rate");
  ScenarioSpec bad_topology = SmallDynamics(BuiltinScenarios().front(), 6, 1);
  bad_topology.topology = "hexagonal";
  expect_invalid(bad_topology, "topology");
}

TEST(ReportTest, JsonReportRoundTrips) {
  BatchConfig config;
  config.threads = 1;
  const ScenarioSpec spec = Small(BuiltinScenarios().front(), 8, 1);
  const std::vector<ScenarioResult> results = {BatchRunner(config).RunOne(spec)};
  ASSERT_TRUE(WriteJsonReport("ENGINE_TEST", results));
  // The file is a valid BENCH v2 record: strict re-parse, provenance, one
  // batch/kernel_build/tasks phase triple for the scenario.
  const core::StatusOr<obs::BenchReportData> parsed =
      obs::LoadBenchReport("BENCH_ENGINE_TEST.json");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->bench, "ENGINE_TEST");
  EXPECT_EQ(parsed->schema, 2);
  EXPECT_EQ(parsed->phases.size(), 3u);
  EXPECT_NE(parsed->provenance.git_sha, "");
  ASSERT_NE(parsed->Find(spec.name + ".batch"), nullptr);
  EXPECT_EQ(parsed->Find(spec.name + ".batch")->n, spec.links);
  EXPECT_EQ(std::remove("BENCH_ENGINE_TEST.json"), 0);
}

// The observability layer must be inert: the deterministic aggregate is
// bit-identical with metrics + tracing on vs off, at any thread count.
TEST(BatchRunnerTest, ObservabilityOnOffLeavesSignatureBitIdentical) {
  const std::vector<ScenarioSpec> specs = {Small(BuiltinScenarios().front())};
  BatchConfig pooled;
  pooled.threads = 4;
  BatchConfig serial;
  serial.threads = 1;

  obs::SetEnabled(false);
  const std::string sig =
      AggregateSignature(BatchRunner(pooled).Run(specs));

  obs::SetEnabled(true);
  obs::TraceSink::Global().Start();
  const std::vector<ScenarioResult> on_pooled = BatchRunner(pooled).Run(specs);
  const std::vector<ScenarioResult> on_serial = BatchRunner(serial).Run(specs);
  EXPECT_GT(obs::TraceSink::Global().EventCount(), 0u);
  obs::TraceSink::Global().Stop();
  obs::TraceSink::Global().Clear();
  obs::SetEnabled(false);

  EXPECT_EQ(AggregateSignature(on_pooled), sig);
  EXPECT_EQ(AggregateSignature(on_serial), sig);
}

// Stage stats are plain wall clock, populated with observability off: one
// kernel_build and one geometry stage entry per instance, one task.<kind>
// entry per configured task per instance.
TEST(BatchRunnerTest, StageStatsCoverEveryInstanceAndTask) {
  BatchConfig config;
  config.threads = 2;
  const ScenarioSpec spec = Small(BuiltinScenarios().front());
  const ScenarioResult r = BatchRunner(config).RunOne(spec);
  const long long n = static_cast<long long>(r.instances.size());

  const obs::StageStats::Stage* kernel = r.stage_stats.Find("kernel_build");
  ASSERT_NE(kernel, nullptr);
  EXPECT_EQ(kernel->count, n);
  EXPECT_GE(kernel->max_ms, kernel->min_ms);
  const obs::StageStats::Stage* geometry =
      r.stage_stats.Find("geometry_build");
  ASSERT_NE(geometry, nullptr);  // no cache configured: all builds
  EXPECT_EQ(geometry->count, n);
  for (const TaskKind task : AllTasks()) {
    const std::string key = std::string("task.") + TaskKindName(task);
    const obs::StageStats::Stage* stage = r.stage_stats.Find(key);
    ASSERT_NE(stage, nullptr) << key;
    EXPECT_EQ(stage->count, n) << key;
  }
  // Per-record: every configured task ran, so no -1 sentinel survives, and
  // the per-kind timers account for the record's task wall time.
  for (const InstanceRecord& rec : r.instances) {
    double task_sum = 0.0;
    for (int k = 0; k < kNumTaskKinds; ++k) {
      EXPECT_GE(rec.task_kind_ms[static_cast<std::size_t>(k)], 0.0);
      task_sum += rec.task_kind_ms[static_cast<std::size_t>(k)];
    }
    EXPECT_LE(task_sum, rec.task_ms + 1.0);
    EXPECT_GE(rec.build_ms, rec.geometry_ms + rec.kernel_ms - 1.0);
  }
}

// A task subset leaves the unrun kinds' timers at the -1 sentinel.
TEST(BatchRunnerTest, TaskSubsetKeepsUnrunTimerSentinels) {
  BatchConfig config;
  config.threads = 1;
  config.tasks = {TaskKind::kGreedyBaseline};
  const ScenarioSpec spec = Small(BuiltinScenarios().front(), 10, 2);
  const ScenarioResult r = BatchRunner(config).RunOne(spec);
  for (const InstanceRecord& rec : r.instances) {
    EXPECT_GE(rec.task_kind_ms[static_cast<std::size_t>(
                  TaskKind::kGreedyBaseline)],
              0.0);
    EXPECT_EQ(rec.task_kind_ms[static_cast<std::size_t>(TaskKind::kQueue)],
              -1.0);
  }
  EXPECT_EQ(r.stage_stats.Find("task.queue"), nullptr);
  EXPECT_NE(r.stage_stats.Find("task.greedy"), nullptr);
}

}  // namespace
}  // namespace decaylib::engine
