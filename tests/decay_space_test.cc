#include "core/decay_space.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/metricity.h"
#include "geom/point.h"

namespace decaylib::core {
namespace {

TEST(DecaySpaceTest, DefaultFillIsUniform) {
  const DecaySpace space(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(space(i, j), i == j ? 0.0 : 1.0);
    }
  }
}

TEST(DecaySpaceTest, SetAndGetAsymmetric) {
  DecaySpace space(3);
  space.Set(0, 1, 5.0);
  space.Set(1, 0, 7.0);
  EXPECT_DOUBLE_EQ(space(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(space(1, 0), 7.0);
  EXPECT_FALSE(space.IsSymmetric());
}

TEST(DecaySpaceTest, SetSymmetric) {
  DecaySpace space(3);
  space.SetSymmetric(0, 2, 4.0);
  EXPECT_DOUBLE_EQ(space(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(space(2, 0), 4.0);
  EXPECT_TRUE(space.IsSymmetric());
}

TEST(DecaySpaceTest, FromMatrixIgnoresDiagonal) {
  const std::vector<std::vector<double>> m{
      {9.0, 1.0, 2.0}, {1.0, 9.0, 3.0}, {2.0, 3.0, 9.0}};
  const DecaySpace space = DecaySpace::FromMatrix(m);
  EXPECT_DOUBLE_EQ(space(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(space(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(space(1, 2), 3.0);
}

TEST(DecaySpaceTest, GeometricMatchesDistancePower) {
  const std::vector<geom::Vec2> pts{{0.0, 0.0}, {3.0, 4.0}, {6.0, 8.0}};
  const DecaySpace space = DecaySpace::Geometric(pts, 2.0);
  EXPECT_DOUBLE_EQ(space(0, 1), 25.0);
  EXPECT_DOUBLE_EQ(space(0, 2), 100.0);
  EXPECT_DOUBLE_EQ(space(1, 2), 25.0);
  EXPECT_TRUE(space.IsSymmetric());
}

TEST(DecaySpaceTest, FromDistancePower) {
  const std::vector<std::vector<double>> d{{0.0, 2.0}, {2.0, 0.0}};
  const DecaySpace space = DecaySpace::FromDistancePower(d, 3.0);
  EXPECT_DOUBLE_EQ(space(0, 1), 8.0);
}

TEST(DecaySpaceTest, MinMaxSpread) {
  DecaySpace space(3);
  space.SetSymmetric(0, 1, 2.0);
  space.SetSymmetric(0, 2, 8.0);
  space.SetSymmetric(1, 2, 4.0);
  EXPECT_DOUBLE_EQ(space.MinDecay(), 2.0);
  EXPECT_DOUBLE_EQ(space.MaxDecay(), 8.0);
  EXPECT_DOUBLE_EQ(space.DecaySpread(), 4.0);
}

TEST(DecaySpaceTest, ValidatePassesOnGoodSpace) {
  DecaySpace space(3);
  EXPECT_FALSE(space.Validate().has_value());
}

TEST(DecaySpaceTest, ScaledMultipliesAllDecays) {
  DecaySpace space(2);
  space.SetSymmetric(0, 1, 3.0);
  const DecaySpace scaled = space.Scaled(2.0);
  EXPECT_DOUBLE_EQ(scaled(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(scaled(0, 0), 0.0);
}

TEST(DecaySpaceTest, SymmetrizationVariants) {
  DecaySpace space(2);
  space.Set(0, 1, 4.0);
  space.Set(1, 0, 9.0);
  EXPECT_DOUBLE_EQ(space.SymmetrizedMin()(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(space.SymmetrizedMax()(0, 1), 9.0);
  EXPECT_DOUBLE_EQ(space.SymmetrizedGeomMean()(0, 1), 6.0);
  EXPECT_TRUE(space.SymmetrizedGeomMean().IsSymmetric());
}

TEST(DecaySpaceTest, SubspacePreservesDecays) {
  DecaySpace space(4);
  space.SetSymmetric(1, 3, 11.0);
  const std::vector<int> nodes{3, 1};
  const DecaySpace sub = space.Subspace(nodes);
  EXPECT_EQ(sub.size(), 2);
  EXPECT_DOUBLE_EQ(sub(0, 1), 11.0);  // (3, 1) in the original
}

TEST(DecaySpaceTest, IsSymmetricWithTolerance) {
  DecaySpace space(2);
  space.Set(0, 1, 1.0);
  space.Set(1, 0, 1.0 + 1e-12);
  EXPECT_FALSE(space.IsSymmetric(0.0));
  EXPECT_TRUE(space.IsSymmetric(1e-9));
}

TEST(QuasiMetricTest, GeometricSpaceRecoversDistances) {
  const std::vector<geom::Vec2> pts{{0.0, 0.0}, {3.0, 4.0}, {1.0, 1.0}};
  const double alpha = 3.5;
  const DecaySpace space = DecaySpace::Geometric(pts, alpha);
  const QuasiMetric d(space, alpha);
  EXPECT_NEAR(d(0, 1), 5.0, 1e-9);
  EXPECT_NEAR(d(0, 2), std::sqrt(2.0), 1e-9);
  EXPECT_DOUBLE_EQ(d(1, 1), 0.0);
}

TEST(QuasiMetricTest, TriangleHoldsAtMetricity) {
  // Any space: the quasi-metric built with zeta = metricity satisfies the
  // triangle inequality by definition.
  DecaySpace space(3);
  space.SetSymmetric(0, 1, 1.0);
  space.SetSymmetric(1, 2, 1.0);
  space.SetSymmetric(0, 2, 100.0);
  const double zeta = Metricity(space);
  ASSERT_GT(zeta, 1.0);
  const QuasiMetric d(space, zeta);
  EXPECT_LE(d.MaxTriangleViolation(), 1e-6);
}

TEST(QuasiMetricTest, TriangleViolatedBelowMetricity) {
  DecaySpace space(3);
  space.SetSymmetric(0, 1, 1.0);
  space.SetSymmetric(1, 2, 1.0);
  space.SetSymmetric(0, 2, 100.0);
  const double zeta = Metricity(space);
  const QuasiMetric d(space, zeta * 0.5);
  EXPECT_GT(d.MaxTriangleViolation(), 0.0);
}

TEST(QuasiMetricTest, MatrixMatchesOperator) {
  DecaySpace space(3);
  space.SetSymmetric(0, 1, 2.0);
  space.SetSymmetric(1, 2, 3.0);
  space.SetSymmetric(0, 2, 4.0);
  const QuasiMetric d(space, 2.0);
  const auto m = d.Matrix();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                       d(i, j));
    }
  }
}

}  // namespace
}  // namespace decaylib::core
