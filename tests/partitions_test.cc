#include "capacity/partitions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "capacity/baselines.h"
#include "core/decay_space.h"
#include "core/metricity.h"
#include "geom/rng.h"
#include "geom/samplers.h"
#include "sinr/power.h"

namespace decaylib::capacity {
namespace {

struct Instance {
  core::DecaySpace space;
  std::vector<sinr::Link> links;

  Instance(int link_count, double box, double alpha, std::uint64_t seed)
      : space(1) {
    geom::Rng rng(seed);
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < link_count; ++i) {
      const geom::Vec2 s{rng.Uniform(0.0, box), rng.Uniform(0.0, box)};
      const double angle = rng.Uniform(0.0, 2.0 * M_PI);
      pts.push_back(s);
      pts.push_back(s + geom::Vec2{rng.Uniform(0.5, 1.2), 0.0}.Rotated(angle));
      links.push_back({2 * i, 2 * i + 1});
    }
    space = core::DecaySpace::Geometric(pts, alpha);
  }
};

void ExpectPartition(const std::vector<std::vector<int>>& classes,
                     std::span<const int> S) {
  std::multiset<int> covered;
  for (const auto& cls : classes) covered.insert(cls.begin(), cls.end());
  EXPECT_EQ(covered, std::multiset<int>(S.begin(), S.end()));
}

TEST(SignalStrengthenTest, ClassesAreQFeasibleAndCountBounded) {
  const Instance inst(30, 20.0, 3.0, 1);
  const sinr::LinkSystem system(inst.space, inst.links, {1.0, 0.0});
  const auto power = sinr::UniformPower(system);
  const auto S = GreedyFeasible(system);  // a 1-feasible set
  ASSERT_GE(S.size(), 3u);
  for (const double q : {2.0, 4.0, 8.0}) {
    const auto classes = SignalStrengthen(system, S, power, 1.0, q);
    ExpectPartition(classes, S);
    const auto bound =
        static_cast<std::size_t>(std::ceil(2.0 * q) * std::ceil(2.0 * q));
    EXPECT_LE(classes.size(), bound) << "q=" << q;
    for (const auto& cls : classes) {
      EXPECT_TRUE(system.IsKFeasible(cls, q, power)) << "q=" << q;
    }
  }
}

TEST(SignalStrengthenTest, AlreadyStrongSetStaysWhole) {
  // A set that is already q-feasible fits in few classes (often one).
  const Instance inst(8, 60.0, 3.0, 2);  // widely spread: weak interference
  const sinr::LinkSystem system(inst.space, inst.links, {1.0, 0.0});
  const auto power = sinr::UniformPower(system);
  const auto all = sinr::AllLinks(system);
  if (system.IsKFeasible(all, 4.0, power)) {
    const auto classes = SignalStrengthen(system, all, power, 4.0, 4.0);
    EXPECT_EQ(classes.size(), 1u);
  }
}

// Lemma B.2: an e^2/beta-feasible set under uniform power is 1/zeta-separated.
class LemmaB2Test : public ::testing::TestWithParam<double> {};

TEST_P(LemmaB2Test, StrongFeasibilityImpliesSeparation) {
  const double alpha = GetParam();
  const Instance inst(30, 25.0, alpha, 3);
  const sinr::LinkSystem system(inst.space, inst.links, {1.0, 0.0});
  const auto power = sinr::UniformPower(system);
  const double zeta = std::max(1.0, core::Metricity(inst.space));
  const double strength = std::exp(2.0) / system.config().beta;
  // Build an e^2/beta-feasible set greedily.
  std::vector<int> S;
  for (int v = 0; v < system.NumLinks(); ++v) {
    S.push_back(v);
    if (!system.IsKFeasible(S, strength, power)) S.pop_back();
  }
  ASSERT_GE(S.size(), 2u);
  EXPECT_TRUE(system.IsSeparatedSet(S, 1.0 / zeta, zeta)) << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, LemmaB2Test,
                         ::testing::Values(2.0, 3.0, 4.0));

TEST(SeparationPartitionTest, ClassesAreSeparated) {
  const Instance inst(40, 18.0, 3.0, 4);
  const sinr::LinkSystem system(inst.space, inst.links, {1.0, 0.0});
  const double zeta = 3.0;
  const auto all = sinr::AllLinks(system);
  for (const double eta : {1.0, 2.0, 3.0}) {
    const auto classes = SeparationPartition(system, all, eta, zeta);
    ExpectPartition(classes, all);
    for (const auto& cls : classes) {
      EXPECT_TRUE(system.IsSeparatedSet(cls, eta, zeta)) << "eta=" << eta;
    }
  }
}

TEST(SeparationPartitionTest, LargerEtaNeedsMoreClasses) {
  const Instance inst(40, 15.0, 3.0, 5);
  const sinr::LinkSystem system(inst.space, inst.links, {1.0, 0.0});
  const auto all = sinr::AllLinks(system);
  const auto coarse = SeparationPartition(system, all, 0.5, 3.0);
  const auto fine = SeparationPartition(system, all, 4.0, 3.0);
  EXPECT_LE(coarse.size(), fine.size());
}

TEST(Lemma41Test, FeasibleSetSplitsIntoZetaSeparatedClasses) {
  const Instance inst(30, 20.0, 3.0, 6);
  const sinr::LinkSystem system(inst.space, inst.links, {1.0, 0.0});
  const double zeta = std::max(1.0, core::Metricity(inst.space));
  const auto S = GreedyFeasible(system);
  ASSERT_GE(S.size(), 2u);
  const auto classes = Lemma41Partition(system, S, zeta);
  ExpectPartition(classes, S);
  for (const auto& cls : classes) {
    EXPECT_TRUE(system.IsSeparatedSet(cls, zeta, zeta));
  }
}

TEST(Lemma41Test, ClassCountPolynomialInZeta) {
  // The lemma promises O(zeta^{2A'}) classes; on the plane with A' ~ 2 that
  // is O(zeta^4), but the realised constants are small -- sanity-check the
  // count stays far below the trivial |S| bound and grows mildly in alpha.
  std::size_t last = 1;
  for (const double alpha : {2.0, 4.0, 6.0}) {
    const Instance inst(40, 20.0, alpha, 7);
    const sinr::LinkSystem system(inst.space, inst.links, {1.0, 0.0});
    const auto S = GreedyFeasible(system);
    if (S.size() < 4) continue;
    const double zeta = std::max(1.0, core::Metricity(inst.space));
    const auto classes = Lemma41Partition(system, S, zeta);
    EXPECT_LE(classes.size(), S.size());
    last = std::max(last, classes.size());
  }
  SUCCEED() << "largest class count " << last;
}

}  // namespace
}  // namespace decaylib::capacity
