// Observability layer tests: counter/histogram exactness under concurrent
// updates, registry handle stability, disabled-path inertness, span
// nesting, Chrome-trace JSON well-formedness (round-tripped through the
// strict io::Json parser), and the StageStats reduction helpers.
#include "obs/registry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/stage_stats.h"
#include "obs/trace.h"

namespace decaylib::obs {
namespace {

// Every test here toggles the process-global enable flag; restore the
// default (off) on exit so test order never matters.
class ObsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetEnabled(false);
    TraceSink::Global().Stop();
    TraceSink::Global().Clear();
  }
};

TEST_F(ObsTest, CounterExactUnderConcurrency) {
  SetEnabled(true);
  Counter& counter = Registry::Global().GetCounter("test.concurrent_counter");
  counter.Reset();
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&counter] {
      for (int i = 0; i < kAdds; ++i) counter.Add();
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(counter.value(), static_cast<long long>(kThreads) * kAdds);
}

TEST_F(ObsTest, HistogramExactCountAndBucketsUnderConcurrency) {
  SetEnabled(true);
  Histogram& histogram = Registry::Global().GetHistogram(
      "test.concurrent_histogram", std::vector<double>{1.0, 10.0, 100.0});
  histogram.Reset();
  constexpr int kThreads = 8;
  constexpr int kObs = 4000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&histogram, t] {
      for (int i = 0; i < kObs; ++i) {
        // Deterministic spread over all four buckets.
        histogram.Observe(0.5 + 40.0 * ((t + i) % 4));
      }
    });
  }
  for (std::thread& t : pool) t.join();

  const long long total = static_cast<long long>(kThreads) * kObs;
  EXPECT_EQ(histogram.count(), total);
  const std::vector<long long> buckets = histogram.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + overflow
  long long bucket_sum = 0;
  for (const long long b : buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, total);
  EXPECT_EQ(buckets[0], total / 4);       // 0.5        <= 1
  EXPECT_EQ(buckets[1], 0);               // nothing in (1, 10]
  EXPECT_EQ(buckets[2], total / 2);       // 40.5, 80.5 <= 100
  EXPECT_EQ(buckets[3], total / 4);       // 120.5 overflows
  EXPECT_DOUBLE_EQ(histogram.min(), 0.5);
  EXPECT_DOUBLE_EQ(histogram.max(), 120.5);
}

TEST_F(ObsTest, RegistryReturnsStableHandles) {
  Counter& a = Registry::Global().GetCounter("test.handle");
  Counter& b = Registry::Global().GetCounter("test.handle");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = Registry::Global().GetHistogram("test.handle_histogram");
  Histogram& h2 = Registry::Global().GetHistogram("test.handle_histogram");
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h1.bounds().size(), DefaultLatencyBoundsMs().size());
}

TEST_F(ObsTest, DisabledInstrumentsStayInert) {
  SetEnabled(false);
  Counter& counter = Registry::Global().GetCounter("test.disabled_counter");
  Gauge& gauge = Registry::Global().GetGauge("test.disabled_gauge");
  Histogram& histogram =
      Registry::Global().GetHistogram("test.disabled_histogram");
  counter.Reset();
  gauge.Reset();
  histogram.Reset();
  counter.Add(7);
  gauge.Set(3.5);
  histogram.Observe(1.0);
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.count(), 0);

  // A span constructed disabled records nothing even into an active sink.
  TraceSink::Global().Start();
  { Span span("disabled_span"); }
  EXPECT_EQ(TraceSink::Global().EventCount(), 0u);
}

TEST_F(ObsTest, DefaultLatencyBoundsAreAscending) {
  const std::span<const double> bounds = DefaultLatencyBoundsMs();
  ASSERT_GT(bounds.size(), 1u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST_F(ObsTest, MetricsJsonRoundTripsThroughStrictParser) {
  SetEnabled(true);
  Registry::Global().GetCounter("test.json_counter").Reset();
  Registry::Global().GetCounter("test.json_counter").Add(5);
  Histogram& histogram = Registry::Global().GetHistogram("test.json_histogram");
  histogram.Reset();
  histogram.Observe(0.25);
  histogram.Observe(2500.0);

  const std::string dump = Registry::Global().ToJson().Dump();
  const core::StatusOr<io::Json> parsed = io::Json::Parse(dump);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const io::Json* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  const io::Json* counter = counters->Find("test.json_counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->AsNumber(), 5.0);
  const io::Json* histograms = parsed->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const io::Json* entry = histograms->Find("test.json_histogram");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->Find("count")->AsNumber(), 2.0);
  EXPECT_EQ(entry->Find("min")->AsNumber(), 0.25);
  EXPECT_EQ(entry->Find("max")->AsNumber(), 2500.0);
  const io::Json* buckets = entry->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  // bounds + overflow entries; bucket counts must sum to the total count.
  EXPECT_EQ(buckets->Items().size(), histogram.bounds().size() + 1);
  double bucket_sum = 0.0;
  for (const io::Json& b : buckets->Items()) {
    bucket_sum += b.Find("count")->AsNumber();
  }
  EXPECT_EQ(bucket_sum, 2.0);
  // The overflow bucket's bound serialises as the string "+inf" (io::Json
  // refuses non-finite numbers).
  EXPECT_EQ(buckets->Items().back().Find("le")->AsString(), "+inf");
}

TEST_F(ObsTest, QuantileFromSortedInterpolatesOrderStatistics) {
  const std::vector<double> sorted = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(QuantileFromSorted(sorted, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(QuantileFromSorted(sorted, 0.5), 30.0);
  // rank 0.9 * 4 = 3.6: interpolate between the 4th and 5th statistics.
  EXPECT_DOUBLE_EQ(QuantileFromSorted(sorted, 0.9), 46.0);
  EXPECT_DOUBLE_EQ(QuantileFromSorted(sorted, 1.0), 50.0);

  const std::vector<double> one = {4.0};
  EXPECT_DOUBLE_EQ(QuantileFromSorted(one, 0.5), 4.0);
  EXPECT_DOUBLE_EQ(QuantileFromSorted({}, 0.5), 0.0);

  EXPECT_DOUBLE_EQ(QuantileRank(0.5, 1), 0.0);
  EXPECT_DOUBLE_EQ(QuantileRank(0.5, 11), 5.0);
}

TEST_F(ObsTest, HistogramQuantileEstimateInterpolatesWithinBucket) {
  SetEnabled(true);
  const std::vector<double> single_bound = {10.0};
  Histogram& clamped =
      Registry::Global().GetHistogram("test.quantile_clamped", single_bound);
  clamped.Reset();
  clamped.Observe(4.0);
  // One sample: the in-bucket midpoint (5.0) clamps to the observed value.
  EXPECT_DOUBLE_EQ(clamped.QuantileEstimate(0.5), 4.0);

  const std::vector<double> bounds = {10.0, 20.0};
  Histogram& uniform =
      Registry::Global().GetHistogram("test.quantile_uniform", bounds);
  uniform.Reset();
  EXPECT_DOUBLE_EQ(uniform.QuantileEstimate(0.5), 0.0);  // empty
  // 0.5, 1.5, ..., 9.5: ten samples, all strictly inside the [0, 10)
  // bucket, so rank r maps to (r + 0.5) / 10 of the bucket width.
  for (int v = 0; v < 10; ++v) uniform.Observe(v + 0.5);
  EXPECT_DOUBLE_EQ(uniform.QuantileEstimate(0.5), 5.0);
  EXPECT_DOUBLE_EQ(uniform.QuantileEstimate(0.9), 8.6);
  EXPECT_DOUBLE_EQ(uniform.QuantileEstimate(0.99), 9.41);
}

TEST_F(ObsTest, MetricsJsonEmitsPercentilesForNonEmptyHistograms) {
  SetEnabled(true);
  Histogram& histogram =
      Registry::Global().GetHistogram("test.json_percentiles");
  histogram.Reset();
  histogram.Observe(1.0);
  histogram.Observe(2.0);
  const io::Json doc = Registry::Global().ToJson();
  const io::Json* entry =
      doc.Find("histograms")->Find("test.json_percentiles");
  ASSERT_NE(entry, nullptr);
  for (const char* key : {"p50", "p90", "p99"}) {
    const io::Json* p = entry->Find(key);
    ASSERT_NE(p, nullptr) << key;
    EXPECT_GE(p->AsNumber(), 1.0);
    EXPECT_LE(p->AsNumber(), 2.0);
  }
  histogram.Reset();
  const io::Json empty_doc = Registry::Global().ToJson();
  const io::Json* empty_entry =
      empty_doc.Find("histograms")->Find("test.json_percentiles");
  ASSERT_NE(empty_entry, nullptr);
  EXPECT_EQ(empty_entry->Find("p50"), nullptr);  // inf sentinels stay out
}

TEST_F(ObsTest, CounterValuesSnapshotsInNameOrder) {
  SetEnabled(true);
  Registry::Global().GetCounter("test.values_a").Reset();
  Registry::Global().GetCounter("test.values_b").Reset();
  Registry::Global().GetCounter("test.values_a").Add(2);
  Registry::Global().GetCounter("test.values_b").Add(9);
  const std::map<std::string, long long> values =
      Registry::Global().CounterValues();
  EXPECT_EQ(values.at("test.values_a"), 2);
  EXPECT_EQ(values.at("test.values_b"), 9);
}

TEST_F(ObsTest, SpanNestingProducesContainedWellFormedEvents) {
  SetEnabled(true);
  TraceSink& sink = TraceSink::Global();
  sink.Start();
  {
    Span outer("outer", nullptr, "test");
    {
      Span inner("inner", nullptr, "test");
    }
  }
  sink.Stop();
  const std::vector<TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 2u);
  // Spans end in nesting order: inner finishes (and records) first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.tid, outer.tid);
  // Containment: the inner slice lies inside the outer one.
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);

  // The exported document is well-formed Chrome trace JSON: every event
  // carries name/cat/ph/ts/dur/pid/tid and ph is the complete-event "X".
  const core::StatusOr<io::Json> parsed = io::Json::Parse(sink.ToJson().Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const io::Json* trace_events = parsed->Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_TRUE(trace_events->is_array());
  ASSERT_EQ(trace_events->Items().size(), 2u);
  for (const io::Json& event : trace_events->Items()) {
    for (const char* key : {"name", "cat", "ph", "ts", "dur", "pid", "tid"}) {
      EXPECT_NE(event.Find(key), nullptr) << key;
    }
    EXPECT_EQ(event.Find("ph")->AsString(), "X");
    EXPECT_GE(event.Find("dur")->AsNumber(), 0.0);
  }
  EXPECT_EQ(parsed->Find("displayTimeUnit")->AsString(), "ms");
}

TEST_F(ObsTest, SpanObservesHistogramAndFinishIsIdempotent) {
  SetEnabled(true);
  Histogram& histogram = Registry::Global().GetHistogram("test.span_histogram");
  histogram.Reset();
  Span span("timed", &histogram);
  const double ms = span.Finish();
  EXPECT_GE(ms, 0.0);
  EXPECT_EQ(span.Finish(), 0.0);  // second Finish is a no-op
  EXPECT_EQ(histogram.count(), 1);
}

TEST_F(ObsTest, TraceSinkWriteFileParsesBack) {
  SetEnabled(true);
  TraceSink& sink = TraceSink::Global();
  sink.Start();
  { Span span("file_span", nullptr, "test"); }
  sink.Stop();
  const std::string path = "obs_test_trace.json";
  ASSERT_TRUE(sink.WriteFile(path).ok());
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(static_cast<bool>(in));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  in.close();
  std::remove(path.c_str());
  const core::StatusOr<io::Json> parsed = io::Json::Parse(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("traceEvents")->Items().size(), 1u);
}

TEST(StageStatsTest, RecordMergeAndTotals) {
  StageStats stats;
  EXPECT_TRUE(stats.empty());
  stats.Record("build", 2.0);
  stats.Record("build", 4.0);
  stats.Record("task", 1.0);
  ASSERT_EQ(stats.stages.size(), 2u);
  const StageStats::Stage* build = stats.Find("build");
  ASSERT_NE(build, nullptr);
  EXPECT_EQ(build->count, 2);
  EXPECT_DOUBLE_EQ(build->total_ms, 6.0);
  EXPECT_DOUBLE_EQ(build->min_ms, 2.0);
  EXPECT_DOUBLE_EQ(build->max_ms, 4.0);
  EXPECT_DOUBLE_EQ(build->MeanMs(), 3.0);
  EXPECT_DOUBLE_EQ(stats.TotalMs(), 7.0);

  StageStats other;
  other.Record("task", 3.0);
  other.Record("checkpoint", 0.5);
  stats.Merge(other);
  const StageStats::Stage* task = stats.Find("task");
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->count, 2);
  EXPECT_DOUBLE_EQ(task->total_ms, 4.0);
  EXPECT_DOUBLE_EQ(task->min_ms, 1.0);
  EXPECT_DOUBLE_EQ(task->max_ms, 3.0);
  EXPECT_NE(stats.Find("checkpoint"), nullptr);
  EXPECT_EQ(stats.Find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(stats.TotalMs(), 10.5);
}

}  // namespace
}  // namespace decaylib::obs
