#include "sinr/power.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/decay_space.h"
#include "geom/rng.h"
#include "geom/samplers.h"

namespace decaylib::sinr {
namespace {

LinkSystem RandomSystem(int links, double alpha, double noise,
                        std::uint64_t seed, core::DecaySpace& storage) {
  geom::Rng rng(seed);
  const auto pts = geom::SampleUniform(2 * links, 10.0, 10.0, rng);
  storage = core::DecaySpace::Geometric(pts, alpha);
  std::vector<Link> link_list;
  for (int i = 0; i < links; ++i) link_list.push_back({2 * i, 2 * i + 1});
  return LinkSystem(storage, link_list, {1.0, noise});
}

TEST(PowerTest, UniformAllEqual) {
  core::DecaySpace storage(1);
  const LinkSystem system = RandomSystem(5, 2.0, 0.0, 1, storage);
  const PowerAssignment p = UniformPower(system, 3.0);
  ASSERT_EQ(p.size(), 5u);
  for (double x : p) EXPECT_DOUBLE_EQ(x, 3.0);
}

TEST(PowerTest, LinearProportionalToDecay) {
  core::DecaySpace storage(1);
  const LinkSystem system = RandomSystem(5, 2.0, 0.0, 2, storage);
  const PowerAssignment p = LinearPower(system, 2.0);
  for (int v = 0; v < 5; ++v) {
    EXPECT_DOUBLE_EQ(p[static_cast<std::size_t>(v)],
                     2.0 * system.LinkDecay(v));
  }
}

TEST(PowerTest, MeanIsSquareRoot) {
  core::DecaySpace storage(1);
  const LinkSystem system = RandomSystem(4, 3.0, 0.0, 3, storage);
  const PowerAssignment p = MeanPower(system);
  for (int v = 0; v < 4; ++v) {
    EXPECT_NEAR(p[static_cast<std::size_t>(v)],
                std::sqrt(system.LinkDecay(v)), 1e-9);
  }
}

// Power-law assignments with tau in [0,1] are monotone (Sec. 2.4); tau > 1
// violates the received-signal condition.
class PowerLawMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(PowerLawMonotonicity, TauInUnitIntervalIsMonotone) {
  const double tau = GetParam();
  core::DecaySpace storage(1);
  const LinkSystem system = RandomSystem(8, 2.5, 0.0, 4, storage);
  const PowerAssignment p = PowerLaw(system, tau);
  EXPECT_TRUE(IsMonotonePower(system, p));
}

INSTANTIATE_TEST_SUITE_P(TauSweep, PowerLawMonotonicity,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

TEST(PowerTest, SuperLinearIsNotMonotone) {
  core::DecaySpace storage(1);
  const LinkSystem system = RandomSystem(8, 2.5, 0.0, 5, storage);
  const PowerAssignment p = PowerLaw(system, 1.5);
  EXPECT_FALSE(IsMonotonePower(system, p));
}

TEST(PowerTest, DecreasingPowerIsNotMonotone) {
  core::DecaySpace storage(1);
  const LinkSystem system = RandomSystem(8, 2.5, 0.0, 6, storage);
  PowerAssignment p = UniformPower(system);
  // Give the longest link the least power: violates P_v <= P_w.
  const auto order = system.OrderByDecay();
  p[static_cast<std::size_t>(order.back())] = 0.01;
  EXPECT_FALSE(IsMonotonePower(system, p));
}

TEST(PowerTest, ScaledToOvercomeNoiseMeetsMargin) {
  core::DecaySpace storage(1);
  const LinkSystem system = RandomSystem(6, 3.0, 1e-3, 7, storage);
  const PowerAssignment p =
      ScaledToOvercomeNoise(system, UniformPower(system), 2.0);
  for (int v = 0; v < system.NumLinks(); ++v) {
    EXPECT_TRUE(system.CanOvercomeNoise(v, p));
    // Margin 2: signal at least twice the threshold.
    EXPECT_GE(p[static_cast<std::size_t>(v)] /
                  (system.config().beta * system.config().noise *
                   system.LinkDecay(v)),
              2.0 - 1e-9);
  }
}

TEST(PowerTest, ScaledIsNoOpWithoutNoise) {
  core::DecaySpace storage(1);
  const LinkSystem system = RandomSystem(4, 2.0, 0.0, 8, storage);
  const PowerAssignment p =
      ScaledToOvercomeNoise(system, UniformPower(system, 5.0), 2.0);
  for (double x : p) EXPECT_DOUBLE_EQ(x, 5.0);
}

}  // namespace
}  // namespace decaylib::sinr
