#include "scheduling/scheduler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/decay_space.h"
#include "core/metricity.h"
#include "geom/rng.h"
#include "sinr/power.h"

namespace decaylib::scheduling {
namespace {

struct Instance {
  core::DecaySpace space;
  std::vector<sinr::Link> links;

  Instance(int link_count, double box, double alpha, std::uint64_t seed)
      : space(1) {
    geom::Rng rng(seed);
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < link_count; ++i) {
      const geom::Vec2 s{rng.Uniform(0.0, box), rng.Uniform(0.0, box)};
      const double angle = rng.Uniform(0.0, 2.0 * M_PI);
      pts.push_back(s);
      pts.push_back(s + geom::Vec2{rng.Uniform(0.5, 1.5), 0.0}.Rotated(angle));
      links.push_back({2 * i, 2 * i + 1});
    }
    space = core::DecaySpace::Geometric(pts, alpha);
  }
};

class SchedulerTest : public ::testing::TestWithParam<Extractor> {};

TEST_P(SchedulerTest, ValidCompleteSchedule) {
  const Instance inst(25, 12.0, 3.0, 1);
  const sinr::LinkSystem system(inst.space, inst.links, {1.0, 0.0});
  const double zeta = std::max(1.0, core::Metricity(inst.space));
  const Schedule schedule = ScheduleLinks(system, zeta, GetParam());
  const auto all = sinr::AllLinks(system);
  EXPECT_TRUE(ValidateSchedule(system, schedule, all));
  EXPECT_GE(schedule.Length(), 1);
  EXPECT_LE(schedule.Length(), system.NumLinks());
}

INSTANTIATE_TEST_SUITE_P(Extractors, SchedulerTest,
                         ::testing::Values(Extractor::kAlgorithm1,
                                           Extractor::kGreedyFeasible));

TEST(SchedulerTest, SingleLinkSchedulesInOneSlot) {
  const Instance inst(1, 5.0, 3.0, 2);
  const sinr::LinkSystem system(inst.space, inst.links, {1.0, 0.0});
  const Schedule schedule =
      ScheduleLinks(system, 3.0, Extractor::kGreedyFeasible);
  EXPECT_EQ(schedule.Length(), 1);
}

TEST(SchedulerTest, WellSeparatedLinksFitOneSlot) {
  // Links far apart: everything schedulable together by the greedy extractor.
  std::vector<geom::Vec2> pts;
  std::vector<sinr::Link> links;
  for (int i = 0; i < 5; ++i) {
    pts.push_back({i * 100.0, 0.0});
    pts.push_back({i * 100.0 + 1.0, 0.0});
    links.push_back({2 * i, 2 * i + 1});
  }
  const core::DecaySpace space = core::DecaySpace::Geometric(pts, 3.0);
  const sinr::LinkSystem system(space, links, {1.0, 0.0});
  const Schedule schedule =
      ScheduleLinks(system, 3.0, Extractor::kGreedyFeasible);
  EXPECT_EQ(schedule.Length(), 1);
}

TEST(SchedulerTest, DenseCliqueNeedsManySlots) {
  // All links stacked in a tiny area: most slots hold one link.
  std::vector<geom::Vec2> pts;
  std::vector<sinr::Link> links;
  geom::Rng rng(3);
  for (int i = 0; i < 6; ++i) {
    const geom::Vec2 s{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)};
    pts.push_back(s);
    pts.push_back(s + geom::Vec2{1.0, 0.0});
    links.push_back({2 * i, 2 * i + 1});
  }
  const core::DecaySpace space = core::DecaySpace::Geometric(pts, 3.0);
  const sinr::LinkSystem system(space, links, {1.0, 0.0});
  const Schedule schedule =
      ScheduleLinks(system, 3.0, Extractor::kGreedyFeasible);
  EXPECT_GE(schedule.Length(), 3);
  EXPECT_TRUE(ValidateSchedule(system, schedule, sinr::AllLinks(system)));
}

TEST(SchedulerTest, ValidateRejectsIncompleteSchedule) {
  const Instance inst(4, 10.0, 3.0, 4);
  const sinr::LinkSystem system(inst.space, inst.links, {1.0, 0.0});
  Schedule partial;
  partial.slots.push_back({0, 1});
  const auto all = sinr::AllLinks(system);
  EXPECT_FALSE(ValidateSchedule(system, partial, all));
}

TEST(SchedulerTest, ValidateRejectsInfeasibleSlot) {
  // Two links on top of each other cannot share a slot.
  std::vector<geom::Vec2> pts{{0, 0}, {1, 0}, {0.1, 0}, {1.1, 0}};
  std::vector<sinr::Link> links{{0, 1}, {2, 3}};
  const core::DecaySpace space = core::DecaySpace::Geometric(pts, 3.0);
  const sinr::LinkSystem system(space, links, {1.5, 0.0});
  Schedule bad;
  bad.slots.push_back({0, 1});
  const auto all = sinr::AllLinks(system);
  EXPECT_FALSE(ValidateSchedule(system, bad, all));
}

TEST(SchedulerTest, SubsetScheduling) {
  const Instance inst(10, 12.0, 3.0, 5);
  const sinr::LinkSystem system(inst.space, inst.links, {1.0, 0.0});
  const std::vector<int> subset{1, 3, 5, 7};
  const Schedule schedule =
      ScheduleLinks(system, 3.0, Extractor::kGreedyFeasible, subset);
  EXPECT_TRUE(ValidateSchedule(system, schedule, subset));
}

}  // namespace
}  // namespace decaylib::scheduling
