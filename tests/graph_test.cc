#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "geom/rng.h"
#include "graph/coloring.h"
#include "graph/generators.h"
#include "graph/independent_set.h"

namespace decaylib::graph {
namespace {

TEST(GraphTest, AddEdgeIsSymmetricAndIdempotent) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);  // duplicate, ignored
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.Degree(1), 1);
  EXPECT_EQ(g.Degree(2), 0);
}

TEST(GraphTest, NeighborsListed) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 3);
  const auto nb = g.Neighbors(0);
  EXPECT_EQ(std::vector<int>(nb.begin(), nb.end()), (std::vector<int>{1, 3}));
}

TEST(GraphTest, IsIndependentSet) {
  Graph g = Path(4);  // 0-1-2-3
  const std::vector<int> good{0, 2};
  const std::vector<int> bad{1, 2};
  EXPECT_TRUE(g.IsIndependentSet(good));
  EXPECT_FALSE(g.IsIndependentSet(bad));
}

TEST(GraphTest, InducedSubgraph) {
  Graph g = Cycle(5);
  const std::vector<int> vs{0, 1, 3};
  const Graph sub = g.InducedSubgraph(vs);
  EXPECT_EQ(sub.size(), 3);
  EXPECT_TRUE(sub.HasEdge(0, 1));   // 0-1 in cycle
  EXPECT_FALSE(sub.HasEdge(0, 2));  // 0-3 not adjacent in C5
}

TEST(GraphTest, Complement) {
  Graph g = Path(3);
  const Graph c = g.Complement();
  EXPECT_TRUE(c.HasEdge(0, 2));
  EXPECT_FALSE(c.HasEdge(0, 1));
  EXPECT_EQ(c.NumEdges(), 1);
}

TEST(GeneratorsTest, PathCycleCompleteStarShapes) {
  EXPECT_EQ(Path(5).NumEdges(), 4);
  EXPECT_EQ(Cycle(5).NumEdges(), 5);
  EXPECT_EQ(Complete(5).NumEdges(), 10);
  EXPECT_EQ(Star(5).NumEdges(), 4);
  EXPECT_EQ(CliqueUnion(3, 4).NumEdges(), 3 * 6);
}

TEST(GeneratorsTest, GnpDensityTracksP) {
  geom::Rng rng(1);
  const Graph g = RandomGnp(60, 0.25, rng);
  const int possible = 60 * 59 / 2;
  const double density = static_cast<double>(g.NumEdges()) / possible;
  EXPECT_NEAR(density, 0.25, 0.05);
}

TEST(GeneratorsTest, UnitDiskEdges) {
  const std::vector<geom::Vec2> pts{{0, 0}, {1, 0}, {3, 0}};
  const Graph g = UnitDisk(pts, 1.5);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(1, 2));
}

TEST(MaxIndependentSetTest, KnownOptima) {
  EXPECT_EQ(MaxIndependentSet(Path(7)).size(), 4u);      // ceil(7/2)
  EXPECT_EQ(MaxIndependentSet(Cycle(7)).size(), 3u);     // floor(7/2)
  EXPECT_EQ(MaxIndependentSet(Complete(6)).size(), 1u);
  EXPECT_EQ(MaxIndependentSet(Star(6)).size(), 5u);      // the leaves
  EXPECT_EQ(MaxIndependentSet(CliqueUnion(4, 3)).size(), 4u);
}

TEST(MaxIndependentSetTest, EmptyGraphTakesAll) {
  const Graph g(5);
  EXPECT_EQ(MaxIndependentSet(g).size(), 5u);
}

TEST(MaxIndependentSetTest, ResultIsIndependent) {
  geom::Rng rng(2);
  const Graph g = RandomGnp(20, 0.3, rng);
  const auto mis = MaxIndependentSet(g);
  EXPECT_TRUE(g.IsIndependentSet(mis));
}

class GreedyVsExact : public ::testing::TestWithParam<std::tuple<int, double>> {
};

TEST_P(GreedyVsExact, GreedyNeverBeatsExactAndBothIndependent) {
  const auto [n, p] = GetParam();
  geom::Rng rng(static_cast<std::uint64_t>(n * 100 + p * 1000));
  const Graph g = RandomGnp(n, p, rng);
  const auto exact = MaxIndependentSet(g);
  const auto greedy = GreedyIndependentSet(g);
  EXPECT_TRUE(g.IsIndependentSet(exact));
  EXPECT_TRUE(g.IsIndependentSet(greedy));
  EXPECT_LE(greedy.size(), exact.size());
  EXPECT_GE(greedy.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GreedyVsExact,
    ::testing::Combine(::testing::Values(8, 14, 20),
                       ::testing::Values(0.1, 0.3, 0.6)));

TEST(DegeneracyTest, PathHasDegeneracyOne) {
  EXPECT_EQ(DegeneracyOrder(Path(8)).degeneracy, 1);
}

TEST(DegeneracyTest, CompleteGraph) {
  EXPECT_EQ(DegeneracyOrder(Complete(5)).degeneracy, 4);
}

TEST(DegeneracyTest, OrderIsAPermutation) {
  geom::Rng rng(3);
  const Graph g = RandomGnp(15, 0.4, rng);
  auto order = DegeneracyOrder(g).order;
  std::sort(order.begin(), order.end());
  for (int v = 0; v < 15; ++v) EXPECT_EQ(order[static_cast<std::size_t>(v)], v);
}

TEST(ColoringTest, ProperOnRandomGraphs) {
  geom::Rng rng(4);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = RandomGnp(25, 0.3, rng);
    const auto colors = DegeneracyColoring(g);
    for (int u = 0; u < g.size(); ++u) {
      for (int v : g.Neighbors(u)) {
        EXPECT_NE(colors[static_cast<std::size_t>(u)],
                  colors[static_cast<std::size_t>(v)]);
      }
    }
    const int used = 1 + *std::max_element(colors.begin(), colors.end());
    EXPECT_LE(used, DegeneracyOrder(g).degeneracy + 1);
  }
}

TEST(ColoringTest, ColorClassesPartition) {
  geom::Rng rng(5);
  const Graph g = RandomGnp(12, 0.5, rng);
  const auto colors = DegeneracyColoring(g);
  const auto classes = ColorClasses(colors);
  std::size_t total = 0;
  for (const auto& cls : classes) {
    total += cls.size();
    EXPECT_TRUE(g.IsIndependentSet(cls));
  }
  EXPECT_EQ(total, 12u);
}

TEST(ColoringTest, BipartiteUsesTwoColors) {
  // Path graphs are bipartite; degeneracy colouring uses at most 2 colours.
  const auto colors = DegeneracyColoring(Path(10));
  const int used = 1 + *std::max_element(colors.begin(), colors.end());
  EXPECT_LE(used, 2);
}

}  // namespace
}  // namespace decaylib::graph
