// Property tests for the cached SINR kernel layer (sinr/kernel.h).
//
// The kernel's contract is bit-for-bit agreement with the naive LinkSystem
// methods: every cached affectance, noise factor, distance, aggregate sum,
// feasibility verdict and separation check must equal the naive result
// exactly (EXPECT_EQ on doubles, not EXPECT_NEAR).  The sweep covers
// symmetric and asymmetric decay spaces, zero and positive noise, and
// uniform and non-uniform power -- and, at the algorithm level, that the
// cached RunAlgorithm1 reproduces the naive reference's output verbatim.
#include "sinr/kernel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "capacity/algorithm1.h"
#include "capacity/baselines.h"
#include "core/decay_space.h"
#include "geom/rng.h"
#include "geom/samplers.h"
#include "sinr/power.h"
#include "spaces/samplers.h"

namespace decaylib::sinr {
namespace {

struct Instance {
  std::string name;
  core::DecaySpace space;
  std::vector<Link> links;
  SinrConfig config;
  PowerAssignment power;
};

std::vector<Link> PairedLinks(int count) {
  std::vector<Link> links;
  links.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) links.push_back({2 * i, 2 * i + 1});
  return links;
}

// The four instance families of the bit-exactness sweep: {symmetric,
// asymmetric} x {noise 0, noise > 0} x {uniform, non-uniform power}.  The
// noisy instances deliberately leave some links unable to overcome noise.
std::vector<Instance> MakeInstances(std::uint64_t seed, int link_count) {
  std::vector<Instance> instances;
  {
    geom::Rng rng(seed);
    const auto pts = geom::SampleUniform(2 * link_count, 14.0, 14.0, rng);
    core::DecaySpace space = core::DecaySpace::Geometric(pts, 3.0);
    Instance inst{"geometric/noiseless/uniform", std::move(space),
                  PairedLinks(link_count), SinrConfig{1.5, 0.0}, {}};
    const LinkSystem system(inst.space, inst.links, inst.config);
    inst.power = UniformPower(system);
    instances.push_back(std::move(inst));
  }
  {
    geom::Rng rng(seed + 1);
    const auto pts = geom::SampleUniform(2 * link_count, 10.0, 10.0, rng);
    core::DecaySpace space = core::DecaySpace::Geometric(pts, 2.5);
    Instance inst{"geometric/noisy/uniform", std::move(space),
                  PairedLinks(link_count), SinrConfig{1.0, 0.05}, {}};
    const LinkSystem system(inst.space, inst.links, inst.config);
    inst.power = UniformPower(system);  // some links fail the noise margin
    instances.push_back(std::move(inst));
  }
  {
    geom::Rng rng(seed + 2);
    core::DecaySpace space =
        spaces::LogUniformSpace(2 * link_count, 200.0, rng, /*symmetric=*/false);
    Instance inst{"loguniform/noiseless/powerlaw", std::move(space),
                  PairedLinks(link_count), SinrConfig{2.0, 0.0}, {}};
    const LinkSystem system(inst.space, inst.links, inst.config);
    inst.power = PowerLaw(system, 0.6);
    instances.push_back(std::move(inst));
  }
  {
    geom::Rng rng(seed + 3);
    const auto pts = geom::SampleUniform(2 * link_count, 12.0, 12.0, rng);
    geom::Rng shadow(seed + 4);
    core::DecaySpace space =
        spaces::ShadowedGeometric(pts, 3.0, 6.0, shadow, /*symmetric=*/false);
    Instance inst{"shadowed-asymmetric/noisy/powerlaw", std::move(space),
                  PairedLinks(link_count), SinrConfig{1.2, 0.01}, {}};
    const LinkSystem system(inst.space, inst.links, inst.config);
    inst.power = ScaledToOvercomeNoise(system, PowerLaw(system, 0.4), 3.0);
    instances.push_back(std::move(inst));
  }
  return instances;
}

std::vector<int> RandomSubset(int n, double p, geom::Rng& rng) {
  std::vector<int> S;
  for (int v = 0; v < n; ++v) {
    if (rng.Chance(p)) S.push_back(v);
  }
  return S;
}

class KernelBitExactness : public ::testing::TestWithParam<int> {};

TEST_P(KernelBitExactness, PairwiseEntriesMatchNaive) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  for (const Instance& inst : MakeInstances(seed, 10)) {
    SCOPED_TRACE(inst.name);
    const LinkSystem system(inst.space, inst.links, inst.config);
    const KernelCache kernel(system, inst.power);
    const int n = system.NumLinks();
    for (int v = 0; v < n; ++v) {
      EXPECT_EQ(kernel.LinkDecay(v), system.LinkDecay(v));
      EXPECT_EQ(kernel.CanOvercomeNoise(v),
                system.CanOvercomeNoise(v, inst.power));
      if (!kernel.CanOvercomeNoise(v)) continue;
      EXPECT_EQ(kernel.NoiseFactor(v), system.NoiseFactor(v, inst.power));
      for (int w = 0; w < n; ++w) {
        EXPECT_EQ(kernel.AffectanceRaw(w, v),
                  system.AffectanceRaw(w, v, inst.power));
        EXPECT_EQ(kernel.Affectance(w, v),
                  system.Affectance(w, v, inst.power));
      }
    }
    for (const double zeta : {1.0, 2.2, 3.0}) {
      for (int v = 0; v < n; ++v) {
        EXPECT_EQ(kernel.LinkLength(v, zeta), system.LinkLength(v, zeta));
        for (int w = 0; w < n; ++w) {
          if (w == v) continue;
          // pow of the min endpoint decay == min of the endpoint pows.
          EXPECT_EQ(kernel.LinkDistance(v, w, zeta),
                    system.LinkDistance(v, w, zeta));
        }
      }
    }
  }
}

TEST_P(KernelBitExactness, AggregateQueriesMatchNaive) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  for (const Instance& inst : MakeInstances(seed, 12)) {
    SCOPED_TRACE(inst.name);
    const LinkSystem system(inst.space, inst.links, inst.config);
    const KernelCache kernel(system, inst.power);
    const int n = system.NumLinks();
    geom::Rng rng(seed * 977 + 5);
    for (int trial = 0; trial < 8; ++trial) {
      // S may contain links that cannot overcome noise (IsFeasible must
      // reject such sets); S_ok keeps only noise-capable links, the only
      // ones the naive OutAffectance / MaxInAffectance accept as targets.
      const std::vector<int> S = RandomSubset(n, 0.55, rng);
      std::vector<int> S_ok;
      for (int v : S) {
        if (kernel.CanOvercomeNoise(v)) S_ok.push_back(v);
      }
      for (int v = 0; v < n; ++v) {
        if (!kernel.CanOvercomeNoise(v)) continue;
        EXPECT_EQ(kernel.InAffectance(S, v),
                  system.InAffectance(S, v, inst.power));
        EXPECT_EQ(kernel.OutAffectance(v, S_ok),
                  system.OutAffectance(v, S_ok, inst.power));
      }
      EXPECT_EQ(kernel.IsFeasible(S), system.IsFeasible(S, inst.power));
      EXPECT_EQ(kernel.IsKFeasible(S, 2.5),
                system.IsKFeasible(S, 2.5, inst.power));
      EXPECT_EQ(kernel.MaxInAffectance(S_ok),
                system.MaxInAffectance(S_ok, inst.power));
      for (const double zeta : {1.7, 3.0}) {
        const double eta = zeta / 2.0;
        for (int v = 0; v < n; ++v) {
          EXPECT_EQ(kernel.IsSeparatedFrom(v, S, eta, zeta),
                    system.IsSeparatedFrom(v, S, eta, zeta));
        }
      }
    }
  }
}

TEST_P(KernelBitExactness, SeparationOracleMatchesNaivePredicates) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  for (const Instance& inst : MakeInstances(seed, 12)) {
    SCOPED_TRACE(inst.name);
    const LinkSystem system(inst.space, inst.links, inst.config);
    const KernelCache kernel(system, inst.power);
    const int n = system.NumLinks();
    for (const double zeta : {1.3, 2.0, 3.5}) {
      const SeparationOracle oracle(kernel, zeta / 2.0, zeta);
      geom::Rng rng(seed * 31 + static_cast<std::uint64_t>(zeta * 10));
      for (int trial = 0; trial < 6; ++trial) {
        const std::vector<int> L = RandomSubset(n, 0.5, rng);
        for (int v = 0; v < n; ++v) {
          EXPECT_EQ(oracle.IsSeparatedFrom(v, L),
                    system.IsSeparatedFrom(v, L, zeta / 2.0, zeta));
        }
      }
    }
  }
}

TEST_P(KernelBitExactness, AccumulatorMatchesNaivePrefixSums) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  for (const Instance& inst : MakeInstances(seed, 12)) {
    SCOPED_TRACE(inst.name);
    const LinkSystem system(inst.space, inst.links, inst.config);
    const KernelCache kernel(system, inst.power);
    const int n = system.NumLinks();
    geom::Rng rng(seed * 131 + 7);
    AffectanceAccumulator acc(kernel);
    // Only noise-capable links join the set, as in every admission loop
    // (the naive OutAffectance aborts on targets that cannot overcome).
    std::vector<int> order;
    for (int v = 0; v < n; ++v) {
      if (kernel.CanOvercomeNoise(v)) order.push_back(v);
    }
    rng.Shuffle(order);
    std::vector<int> members;
    for (int v : order) {
      acc.Add(v);
      members.push_back(v);
      for (int u = 0; u < n; ++u) {
        if (!kernel.CanOvercomeNoise(u)) continue;
        // Insertion order == naive iteration order: sums agree exactly.
        EXPECT_EQ(acc.In(u), system.InAffectance(members, u, inst.power));
        EXPECT_EQ(acc.Out(u), system.OutAffectance(u, members, inst.power));
      }
    }
    // Remove is a floating-point subtraction, not an exact undo: compare
    // against the fresh sum with a tolerance.
    while (members.size() > order.size() / 2) {
      const int victim = members[members.size() / 2];
      acc.Remove(victim);
      members.erase(members.begin() +
                    static_cast<std::ptrdiff_t>(members.size() / 2));
    }
    EXPECT_EQ(acc.members().size(), members.size());
    for (int u = 0; u < n; ++u) {
      if (!kernel.CanOvercomeNoise(u)) continue;
      EXPECT_NEAR(acc.In(u), kernel.InAffectance(acc.members(), u), 1e-9);
    }
  }
}

TEST_P(KernelBitExactness, TiledBuildBitIdenticalToScalar) {
  // The fused tiled build is the default; the scalar path is the reference
  // oracle.  Every matrix entry must be the identical double across all
  // four instance families (asymmetric spaces and non-uniform powers
  // included), or the tiling reordered a floating-point operation.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  for (const Instance& inst : MakeInstances(seed, 12)) {
    SCOPED_TRACE(inst.name);
    const LinkSystem system(inst.space, inst.links, inst.config);
    const KernelCache scalar(system, inst.power, KernelBuildPath::kScalar);
    const KernelCache tiled(system, inst.power, KernelBuildPath::kTiled);
    const int n = system.NumLinks();
    ASSERT_EQ(scalar.NumLinks(), n);
    ASSERT_EQ(tiled.NumLinks(), n);
    for (int v = 0; v < n; ++v) {
      EXPECT_EQ(tiled.LinkDecay(v), scalar.LinkDecay(v));
      EXPECT_EQ(tiled.CanOvercomeNoise(v), scalar.CanOvercomeNoise(v));
      if (tiled.CanOvercomeNoise(v)) {
        EXPECT_EQ(tiled.NoiseFactor(v), scalar.NoiseFactor(v));
      }
      for (int w = 0; w < n; ++w) {
        EXPECT_EQ(tiled.AffectanceRaw(w, v), scalar.AffectanceRaw(w, v));
        EXPECT_EQ(tiled.CrossDecay(w, v), scalar.CrossDecay(w, v));
        EXPECT_EQ(tiled.MinPairDecay(v, w), scalar.MinPairDecay(v, w));
        if (tiled.CanOvercomeNoise(v)) {
          EXPECT_EQ(tiled.Affectance(w, v), scalar.Affectance(w, v));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelBitExactness, ::testing::Range(1, 9));

// --- float32 kernel gate ----------------------------------------------------

TEST(Float32KernelTest, AcceptsWellConditionedInstance) {
  geom::Rng rng(17);
  const auto pts = geom::SampleUniform(24, 14.0, 14.0, rng);
  const core::DecaySpace space = core::DecaySpace::Geometric(pts, 3.0);
  const auto links = PairedLinks(12);
  const LinkSystem system(space, links, {1.5, 0.0});
  const KernelCache kernel(system, UniformPower(system));

  const auto f32 = Float32Kernel::FromDouble(kernel, 1e-5);
  ASSERT_TRUE(f32.ok()) << f32.status().ToString();
  EXPECT_EQ(f32->NumLinks(), kernel.NumLinks());
  EXPECT_LE(f32->MaxRelativeError(), 1e-5);
  EXPECT_GT(f32->MemoryBytes(), 0);
  EXPECT_LT(f32->MemoryBytes(), kernel.MemoryBytes());

  // Each stored entry is the float round-trip of the double entry, and the
  // double-accumulated aggregate stays within the certified bound.
  const int n = kernel.NumLinks();
  std::vector<int> all;
  for (int v = 0; v < n; ++v) all.push_back(v);
  for (int v = 0; v < n; ++v) {
    double dense = 0.0;
    for (int w = 0; w < n; ++w) {
      EXPECT_EQ(f32->AffectanceRaw(w, v),
                static_cast<float>(kernel.AffectanceRaw(w, v)));
      dense += kernel.AffectanceRaw(w, v);
    }
    EXPECT_NEAR(f32->InAffectanceRaw(all, v), dense,
                1e-5 * dense * n + 1e-12);
  }
}

TEST(Float32KernelTest, RejectsIllConditionedInstance) {
  // Kilometre-scale senders with picometre links: affectances span more
  // decades than a float holds, so nonzero doubles underflow to 0.0f and
  // the gate must refuse rather than silently drop the far field.  (The
  // offset must survive double rounding against ~4e3 coordinates -- ulp
  // there is ~4.5e-13 -- while keeping f_vv / crossdecay below float's
  // subnormal floor.)
  geom::Rng rng(18);
  std::vector<geom::Vec2> pts;
  for (int i = 0; i < 10; ++i) {
    const geom::Vec2 s{rng.Uniform(0.0, 4000.0), rng.Uniform(0.0, 4000.0)};
    pts.push_back(s);
    pts.push_back(s + geom::Vec2{1e-12, 0.0});
  }
  const core::DecaySpace space = core::DecaySpace::Geometric(pts, 3.0);
  const auto links = PairedLinks(10);
  const LinkSystem system(space, links, {1.0, 0.0});
  const KernelCache kernel(system, UniformPower(system));

  const auto f32 = Float32Kernel::FromDouble(kernel, 1e-3);
  ASSERT_FALSE(f32.ok());
  EXPECT_EQ(f32.status().code(), core::StatusCode::kNumericError);
}

TEST(Float32KernelTest, ZeroToleranceRejectsAnyDeviation) {
  // Generic doubles do not round-trip through float, so tol = 0 must fail
  // on any instance whose entries are not exactly representable.
  geom::Rng rng(19);
  const auto pts = geom::SampleUniform(16, 10.0, 10.0, rng);
  const core::DecaySpace space = core::DecaySpace::Geometric(pts, 2.5);
  const auto links = PairedLinks(8);
  const LinkSystem system(space, links, {1.0, 0.0});
  const KernelCache kernel(system, UniformPower(system));

  const auto f32 = Float32Kernel::FromDouble(kernel, 0.0);
  ASSERT_FALSE(f32.ok());
  EXPECT_EQ(f32.status().code(), core::StatusCode::kNumericError);
}

// --- algorithm-level agreement ---------------------------------------------

class CachedAlgorithmAgreement : public ::testing::TestWithParam<int> {};

TEST_P(CachedAlgorithmAgreement, RunAlgorithm1MatchesNaive) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  geom::Rng rng(seed);
  for (const double alpha : {2.0, 3.0, 4.0}) {
    for (const double box : {8.0, 25.0, 80.0}) {
      const auto pts = geom::SampleUniform(48, box, box, rng);
      const core::DecaySpace space = core::DecaySpace::Geometric(pts, alpha);
      const LinkSystem system(space, PairedLinks(24), {1.0, 1e-4});
      const double zeta = alpha;
      const auto cached = capacity::RunAlgorithm1(system, zeta);
      const auto naive = capacity::RunAlgorithm1Naive(system, zeta);
      EXPECT_EQ(cached.admitted, naive.admitted)
          << "alpha=" << alpha << " box=" << box;
      EXPECT_EQ(cached.selected, naive.selected)
          << "alpha=" << alpha << " box=" << box;
    }
  }
}

TEST_P(CachedAlgorithmAgreement, GreedyFeasibleMatchesNaiveReference) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  geom::Rng rng(seed * 7 + 3);
  const auto pts = geom::SampleUniform(40, 20.0, 20.0, rng);
  const core::DecaySpace space = core::DecaySpace::Geometric(pts, 3.0);
  const LinkSystem system(space, PairedLinks(20), {1.0, 0.0});
  const PowerAssignment power = UniformPower(system);

  // Naive reference: the pre-kernel push-IsFeasible-pop loop.
  std::vector<int> order = system.OrderByDecay();
  std::vector<int> reference;
  for (int v : order) {
    if (!system.CanOvercomeNoise(v, power)) continue;
    reference.push_back(v);
    if (!system.IsFeasible(reference, power)) reference.pop_back();
  }

  EXPECT_EQ(capacity::GreedyFeasible(system), reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CachedAlgorithmAgreement,
                         ::testing::Range(1, 7));

}  // namespace
}  // namespace decaylib::sinr
