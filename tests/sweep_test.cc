// Sweep engine tests: deterministic grid expansion, axis application,
// builtin sweep well-formedness, the runner's thread-count and arena
// invariances, and the CSV export.
#include "sweep/sweep.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "engine/report.h"
#include "engine/scenario.h"
#include "obs/bench_harness.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sweep/sweep_report.h"
#include "sweep/sweep_runner.h"

namespace decaylib::sweep {
namespace {

SweepSpec TinySweep() {
  SweepSpec spec;
  spec.name = "tiny";
  spec.base.name = "tiny";
  spec.base.topology = "uniform";
  spec.base.links = 12;
  spec.base.instances = 2;
  spec.base.seed = 777;
  spec.axes = {{"links", {10, 14}}, {"alpha", {2.5, 3.0}}};
  return spec;
}

TEST(SweepSpecTest, SweepableFieldsApply) {
  engine::ScenarioSpec spec;
  for (const std::string& field : SweepableFields()) {
    EXPECT_TRUE(IsSweepableField(field)) << field;
    // 2.0 is integral and valid for every field except lambda, whose values
    // are probabilities in [0, 1].
    EXPECT_TRUE(
        ApplyAxisValue(spec, field, field == "lambda" ? 0.5 : 2.0).ok())
        << field;
  }
  EXPECT_FALSE(IsSweepableField("topology"));
  EXPECT_FALSE(IsSweepableField("scheduler"));
  EXPECT_EQ(spec.links, 2);
  EXPECT_EQ(spec.instances, 2);
  EXPECT_EQ(spec.alpha, 2.0);
  EXPECT_EQ(spec.sigma_db, 2.0);
  EXPECT_EQ(spec.power_tau, 2.0);
  EXPECT_EQ(spec.beta, 2.0);
  EXPECT_EQ(spec.noise, 2.0);
  EXPECT_EQ(spec.zeta, 2.0);
  EXPECT_EQ(spec.dynamics.lambda, 0.5);
  EXPECT_EQ(spec.dynamics.regret_penalty, 2.0);
}

// Bad axis bindings are recoverable errors now, not aborts: the status
// carries the diagnostic and the spec is left untouched.
TEST(SweepSpecTest, OutOfRangeAxisValuesRejectedAsStatus) {
  engine::ScenarioSpec spec;
  const engine::ScenarioSpec before = spec;

  core::Status status = ApplyAxisValue(spec, "lambda", 1.5);
  EXPECT_EQ(status.code(), core::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("Bernoulli"), std::string::npos);
  EXPECT_EQ(spec.dynamics.lambda, before.dynamics.lambda);

  status = ApplyAxisValue(spec, "lambda", -0.5);
  EXPECT_EQ(status.code(), core::StatusCode::kInvalidArgument);

  status = ApplyAxisValue(spec, "regret_penalty", -1.0);
  EXPECT_EQ(status.code(), core::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find(">= 0"), std::string::npos);

  status = ApplyAxisValue(spec, "links", 2.5);
  EXPECT_EQ(status.code(), core::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("integral"), std::string::npos);

  status = ApplyAxisValue(spec, "no_such_field", 1.0);
  EXPECT_EQ(status.code(), core::StatusCode::kInvalidArgument);
  // The diagnostic lists the sweepable fields, so a CLI typo self-explains.
  EXPECT_NE(status.message().find("links"), std::string::npos);
  EXPECT_NE(status.message().find("regret_penalty"), std::string::npos);
}

TEST(SweepSpecTest, ValidateSweepSpecCatchesBadAxesAndBase) {
  EXPECT_TRUE(ValidateSweepSpec(TinySweep()).ok());

  SweepSpec bad_base = TinySweep();
  bad_base.base.beta = 0.5;
  EXPECT_EQ(ValidateSweepSpec(bad_base).code(),
            core::StatusCode::kInvalidArgument);

  SweepSpec unknown_axis = TinySweep();
  unknown_axis.axes.push_back({"bogus", {1.0}});
  EXPECT_EQ(ValidateSweepSpec(unknown_axis).code(),
            core::StatusCode::kInvalidArgument);

  SweepSpec empty_axis = TinySweep();
  empty_axis.axes.push_back({"noise", {}});
  EXPECT_EQ(ValidateSweepSpec(empty_axis).code(),
            core::StatusCode::kInvalidArgument);

  // The value parses into the field but yields an invalid cell spec.
  SweepSpec bad_cell = TinySweep();
  bad_cell.axes.push_back({"beta", {1.0, 0.25}});
  const core::Status status = ValidateSweepSpec(bad_cell);
  EXPECT_EQ(status.code(), core::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("beta"), std::string::npos);
}

TEST(SweepGridTest, ExpansionIsRowMajorLastAxisFastest) {
  const SweepSpec spec = TinySweep();
  EXPECT_EQ(GridSize(spec), 4);
  const std::vector<SweepCell> cells = ExpandGrid(spec);
  ASSERT_EQ(cells.size(), 4u);

  const std::vector<std::vector<int>> expected_coords = {
      {0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const std::vector<int> expected_links = {10, 10, 14, 14};
  const std::vector<double> expected_alpha = {2.5, 3.0, 2.5, 3.0};
  std::set<std::string> names;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    EXPECT_EQ(cells[c].index, static_cast<int>(c));
    EXPECT_EQ(cells[c].coords, expected_coords[c]);
    EXPECT_EQ(cells[c].spec.links, expected_links[c]);
    EXPECT_EQ(cells[c].spec.alpha, expected_alpha[c]);
    // Untouched base fields carry through.
    EXPECT_EQ(cells[c].spec.seed, spec.base.seed);
    EXPECT_EQ(cells[c].spec.instances, spec.base.instances);
    EXPECT_TRUE(names.insert(cells[c].spec.name).second)
        << "duplicate cell name " << cells[c].spec.name;
    EXPECT_NE(cells[c].spec.name.find("links="), std::string::npos);
  }
}

TEST(SweepGridTest, AxisFreeSweepIsOneBaseCell) {
  SweepSpec spec = TinySweep();
  spec.axes.clear();
  EXPECT_EQ(GridSize(spec), 1);
  const std::vector<SweepCell> cells = ExpandGrid(spec);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].spec.name, spec.base.name);
  EXPECT_EQ(cells[0].spec.links, spec.base.links);
}

TEST(SweepGridTest, BuiltinSweepsAreWellFormed) {
  const std::vector<SweepSpec> sweeps = BuiltinSweeps();
  EXPECT_GE(sweeps.size(), 3u);
  std::set<std::string> seen;
  for (const SweepSpec& sweep : sweeps) {
    EXPECT_TRUE(seen.insert(sweep.name).second) << "duplicate " << sweep.name;
    EXPECT_TRUE(engine::IsRegisteredTopology(sweep.base.topology))
        << sweep.name;
    EXPECT_GE(GridSize(sweep), 2) << sweep.name;
    for (const SweepAxis& axis : sweep.axes) {
      EXPECT_TRUE(IsSweepableField(axis.field)) << sweep.name;
      EXPECT_FALSE(axis.values.empty()) << sweep.name;
    }
    EXPECT_TRUE(FindBuiltinSweep(sweep.name).has_value());
  }
  EXPECT_FALSE(FindBuiltinSweep("no_such_sweep").has_value());
}

// The sweep engine's core contract: the deterministic signature of a grid
// depends on neither the worker-thread count nor arena reuse.
TEST(SweepRunnerTest, SignatureInvariantAcrossThreadsAndArena) {
  const SweepSpec spec = TinySweep();

  SweepConfig serial;
  serial.threads = 1;
  SweepConfig pooled;
  pooled.threads = 4;
  SweepConfig pooled_no_arena = pooled;
  pooled_no_arena.reuse_arena = false;

  const SweepResult a = SweepRunner(serial).Run(spec);
  const SweepResult b = SweepRunner(pooled).Run(spec);
  const SweepResult c = SweepRunner(pooled_no_arena).Run(spec);

  ASSERT_EQ(a.cells.size(), 4u);
  const std::string sig = SweepSignature(a);
  EXPECT_EQ(sig, SweepSignature(b));
  EXPECT_EQ(sig, SweepSignature(c));
  EXPECT_EQ(SweepViolationCount(a), 0);
  // Every kernel of the arena-backed runs went through an arena slot.
  EXPECT_EQ(a.arena_rebuilds, 4 * 2);
  EXPECT_EQ(b.arena_rebuilds, 4 * 2);
  EXPECT_EQ(c.arena_rebuilds, 0);
  // Both TinySweep axes are geometric, so the cache holds but never hits.
  EXPECT_EQ(a.geometry_builds, 4 * 2);
  EXPECT_EQ(a.geometry_reuses, 0);
}

// Geometry reuse and the pairing route are invisible in the signature --
// across thread counts, cache on/off, and grid/MNN vs sort-greedy pairing
// -- and the accounting matches the grid structure exactly.
TEST(SweepRunnerTest, SignatureInvariantAcrossGeometryCacheAndPairing) {
  SweepSpec spec = TinySweep();
  // alpha re-samples geometry, power_tau and beta do not; with the
  // non-geometric axes fastest, each alpha generation serves 4 cells.
  spec.axes = {{"alpha", {2.5, 3.0}},
               {"power_tau", {0.0, 0.5}},
               {"beta", {1.0, 1.5}}};

  SweepConfig cached_serial;
  cached_serial.threads = 1;
  SweepConfig cached_pooled;
  cached_pooled.threads = 4;
  SweepConfig uncached = cached_pooled;
  uncached.reuse_geometry = false;
  SweepConfig uncached_sort = uncached;
  uncached_sort.pairing = engine::PairingMode::kSortGreedy;
  SweepConfig cached_sort = cached_pooled;
  cached_sort.pairing = engine::PairingMode::kSortGreedy;

  const SweepResult a = SweepRunner(cached_serial).Run(spec);
  const SweepResult b = SweepRunner(cached_pooled).Run(spec);
  const SweepResult c = SweepRunner(uncached).Run(spec);
  const SweepResult d = SweepRunner(uncached_sort).Run(spec);
  const SweepResult e = SweepRunner(cached_sort).Run(spec);

  ASSERT_EQ(a.cells.size(), 8u);
  const std::string sig = SweepSignature(a);
  EXPECT_EQ(sig, SweepSignature(b));
  EXPECT_EQ(sig, SweepSignature(c));
  EXPECT_EQ(sig, SweepSignature(d));
  EXPECT_EQ(sig, SweepSignature(e));
  EXPECT_EQ(SweepViolationCount(a), 0);

  // 2 alpha generations x 2 instances sampled once each; the other 6 cells
  // of each generation reuse them.  Identical accounting on every cached
  // run, independent of the thread count.
  EXPECT_EQ(a.geometry_builds, 2 * 2);
  EXPECT_EQ(a.geometry_reuses, 6 * 2);
  EXPECT_EQ(b.geometry_builds, 2 * 2);
  EXPECT_EQ(b.geometry_reuses, 6 * 2);
  EXPECT_EQ(c.geometry_builds, 0);
  EXPECT_EQ(c.geometry_reuses, 0);
}

// A dynamics grid (lambda x regret_penalty, both non-geometric) keeps the
// sweep contract: thread-count-invariant signatures, one geometry
// generation serving every cell, and the queue/regret metrics present in
// every cell's aggregate and in the CSV export.
TEST(SweepRunnerTest, DynamicsAxesShareGeometryAndStayDeterministic) {
  SweepSpec spec = TinySweep();
  spec.base.links = 10;
  spec.base.dynamics.queue_slots = 120;
  spec.base.dynamics.regret_rounds = 120;
  spec.axes = {{"lambda", {0.05, 0.3}}, {"regret_penalty", {0.5, 1.0}}};
  spec.tasks = {engine::TaskKind::kQueue, engine::TaskKind::kRegret};

  SweepConfig serial;
  serial.threads = 1;
  SweepConfig pooled;
  pooled.threads = 4;

  const SweepResult a = SweepRunner(serial).Run(spec);
  const SweepResult b = SweepRunner(pooled).Run(spec);
  ASSERT_EQ(a.cells.size(), 4u);
  EXPECT_EQ(SweepSignature(a), SweepSignature(b));
  // Both axes are non-geometric: the first cell samples each instance once
  // and every other cell reuses them.
  EXPECT_EQ(a.geometry_builds, 2);
  EXPECT_EQ(a.geometry_reuses, 3 * 2);
  for (const SweepCellResult& cell : a.cells) {
    for (const char* metric :
         {"queue_throughput", "queue_unstable", "regret_successes"}) {
      const engine::MetricSummary* m =
          engine::FindAggregateMetric(cell.result, metric);
      ASSERT_NE(m, nullptr) << cell.cell.spec.name << " " << metric;
      EXPECT_EQ(m->count, 2) << cell.cell.spec.name << " " << metric;
    }
  }
  const std::vector<std::string> header = SweepCsvHeader(a);
  EXPECT_NE(std::find(header.begin(), header.end(), "queue_throughput_mean"),
            header.end());
  EXPECT_NE(std::find(header.begin(), header.end(), "regret_successes_mean"),
            header.end());

  // Higher arrival rates can only grow the per-cell mean backlog: the
  // lambda frontier read off the grid is monotone.
  const auto mean_queue_at = [&](std::size_t cell) {
    const engine::MetricSummary* m =
        engine::FindAggregateMetric(a.cells[cell].result, "queue_mean_queue");
    return m == nullptr ? -1.0 : m->Mean();
  };
  EXPECT_LE(mean_queue_at(0), mean_queue_at(2) + 1e-9);
  EXPECT_LE(mean_queue_at(1), mean_queue_at(3) + 1e-9);
}

TEST(SweepSpecTest, FarFieldEpsilonAxisAppliesAndValidates) {
  engine::ScenarioSpec spec;
  EXPECT_TRUE(IsSweepableField("farfield_epsilon"));
  EXPECT_TRUE(ApplyAxisValue(spec, "farfield_epsilon", 0.0).ok());
  EXPECT_EQ(spec.farfield_epsilon, 0.0);
  EXPECT_TRUE(ApplyAxisValue(spec, "farfield_epsilon", 1e-3).ok());
  EXPECT_EQ(spec.farfield_epsilon, 1e-3);

  const double before = spec.farfield_epsilon;
  const core::Status negative =
      ApplyAxisValue(spec, "farfield_epsilon", -1e-3);
  EXPECT_EQ(negative.code(), core::StatusCode::kInvalidArgument);
  EXPECT_EQ(spec.farfield_epsilon, before);  // spec untouched on rejection

  // A grid over the certified bound in far-field mode runs clean and stays
  // thread-count invariant like every other axis.
  SweepSpec sweep = TinySweep();
  sweep.base.links = 10;
  sweep.base.kernel_mode = engine::KernelMode::kFarField;
  sweep.axes = {{"farfield_epsilon", {0.0, 1e-3}}};
  sweep.tasks = {engine::TaskKind::kAlgorithm1,
                 engine::TaskKind::kGreedyBaseline};
  EXPECT_TRUE(ValidateSweepSpec(sweep).ok());

  SweepConfig serial;
  serial.threads = 1;
  SweepConfig pooled;
  pooled.threads = 4;
  const SweepResult a = SweepRunner(serial).Run(sweep);
  const SweepResult b = SweepRunner(pooled).Run(sweep);
  ASSERT_EQ(a.cells.size(), 2u);
  EXPECT_EQ(SweepSignature(a), SweepSignature(b));
  EXPECT_EQ(SweepViolationCount(a), 0);
  // Both cells share one geometry generation: epsilon is non-geometric.
  EXPECT_EQ(a.geometry_builds, 2);
  EXPECT_EQ(a.geometry_reuses, 2);
}

// An LRU depth covering the geometric axis turns an interleaved-key grid's
// thrash into warm generation hits without perturbing the signature.
TEST(SweepRunnerTest, LruGenerationsKeepSignatureAndTurnThrashIntoHits) {
  SweepSpec spec = TinySweep();
  // Geometric axis fastest: keys alternate K1 K2 K1 K2 across the grid,
  // the worst case for a single-generation cache.
  spec.axes = {{"beta", {1.0, 1.5}}, {"alpha", {2.5, 3.0}}};

  SweepConfig shallow;
  shallow.threads = 2;  // depth 1: the historical behaviour
  SweepConfig deep = shallow;
  deep.geometry_generations = 2;
  SweepConfig deep_serial = deep;
  deep_serial.threads = 1;

  const SweepResult a = SweepRunner(shallow).Run(spec);
  const SweepResult b = SweepRunner(deep).Run(spec);
  const SweepResult c = SweepRunner(deep_serial).Run(spec);

  ASSERT_EQ(a.cells.size(), 4u);
  const std::string sig = SweepSignature(a);
  EXPECT_EQ(sig, SweepSignature(b));
  EXPECT_EQ(sig, SweepSignature(c));
  EXPECT_EQ(SweepViolationCount(a), 0);

  // Depth 1 rebuilds every revisited key (2 instances x 4 cells) and
  // evicts on every key change after the first.
  EXPECT_EQ(a.geometry_builds, 4 * 2);
  EXPECT_EQ(a.geometry_generation_hits, 0);
  EXPECT_EQ(a.geometry_evictions, 3);
  // Depth 2 holds both alpha generations: the second pass is all hits.
  EXPECT_EQ(b.geometry_builds, 2 * 2);
  EXPECT_EQ(b.geometry_reuses, 2 * 2);
  EXPECT_EQ(b.geometry_generation_hits, 2);
  EXPECT_EQ(b.geometry_evictions, 0);
  EXPECT_EQ(c.geometry_generation_hits, 2);
}

TEST(SweepReportTest, CsvHasOneRowPerCellAndAxisColumns) {
  SweepSpec spec = TinySweep();
  spec.tasks = {engine::TaskKind::kAlgorithm1,
                engine::TaskKind::kGreedyBaseline};
  SweepConfig config;
  config.threads = 2;
  const SweepResult result = SweepRunner(config).Run(spec);

  const std::vector<std::string> header = SweepCsvHeader(result);
  const auto rows = SweepCsvRows(result);
  ASSERT_EQ(rows.size(), result.cells.size());
  // sweep, cell, links axis, alpha axis, instances, then metrics -- the
  // links context column is skipped because the links axis already carries
  // it, so no header name repeats.
  ASSERT_GE(header.size(), 5u);
  EXPECT_EQ(header[0], "sweep");
  EXPECT_EQ(header[2], "links");
  EXPECT_EQ(header[3], "alpha");
  EXPECT_EQ(header[4], "instances");
  const std::set<std::string> unique(header.begin(), header.end());
  EXPECT_EQ(unique.size(), header.size()) << "duplicate CSV column name";
  bool has_alg1 = false;
  for (const std::string& column : header) {
    if (column == "alg1_size_mean") has_alg1 = true;
  }
  EXPECT_TRUE(has_alg1);
  for (const auto& row : rows) {
    EXPECT_EQ(row.size(), header.size());
    EXPECT_EQ(row[0], "tiny");
  }

  const std::string path = "SWEEP_TEST_OUT.csv";
  ASSERT_TRUE(WriteSweepCsvFile(result, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  in.close();
  EXPECT_EQ(lines, result.cells.size() + 1);  // header + one row per cell
  EXPECT_EQ(std::remove(path.c_str()), 0);
}

// Metrics + tracing must be inert: a sweep's signature is bit-identical
// with observability off and on, at any thread count -- and the timing
// surfaces (stage stats, attempt times) are populated either way.
TEST(SweepRunnerTest, ObservabilityInertAcrossThreadsAndStageStats) {
  const SweepSpec spec = TinySweep();
  SweepConfig serial;
  serial.threads = 1;
  SweepConfig pooled;
  pooled.threads = 4;

  obs::SetEnabled(false);
  const std::string sig = SweepSignature(SweepRunner(pooled).Run(spec));

  obs::SetEnabled(true);
  obs::TraceSink::Global().Start();
  const SweepResult on_pooled = SweepRunner(pooled).Run(spec);
  const SweepResult on_serial = SweepRunner(serial).Run(spec);
  EXPECT_GT(obs::TraceSink::Global().EventCount(), 0u);
  obs::TraceSink::Global().Stop();
  obs::TraceSink::Global().Clear();
  obs::SetEnabled(false);

  EXPECT_EQ(SweepSignature(on_pooled), sig);
  EXPECT_EQ(SweepSignature(on_serial), sig);

  // Timing surfaces are plain wall clock, independent of the obs flag.
  EXPECT_FALSE(on_serial.stage_stats.empty());
  for (const SweepCellResult& cell : on_serial.cells) {
    ASSERT_TRUE(cell.outcome.ok) << cell.cell.spec.name;
    EXPECT_GT(cell.outcome.attempt_ms, 0.0) << cell.cell.spec.name;
    EXPECT_GE(cell.outcome.total_attempt_ms, cell.outcome.attempt_ms);
    EXPECT_FALSE(cell.result.stage_stats.empty()) << cell.cell.spec.name;
  }
}

// A constant-shape grid (no links axis) exercises the arena warm path: one
// worker's slab goes cold exactly once, every later rebuild is a skip.
TEST(SweepRunnerTest, ArenaWarmSkipsCountedOnConstantShapeGrid) {
  SweepSpec spec = TinySweep();
  spec.axes = {{"alpha", {2.5, 3.0}}, {"beta", {1.0, 1.5}}};
  SweepConfig config;
  config.threads = 1;
  const SweepResult result = SweepRunner(config).Run(spec);
  ASSERT_EQ(result.cells.size(), 4u);
  EXPECT_EQ(result.arena_rebuilds, 4 * 2);
  EXPECT_EQ(result.arena_warm_skips, 4 * 2 - 1);

  SweepConfig no_arena = config;
  no_arena.reuse_arena = false;
  const SweepResult direct = SweepRunner(no_arena).Run(spec);
  EXPECT_EQ(direct.arena_rebuilds, 0);
  EXPECT_EQ(direct.arena_warm_skips, 0);
  EXPECT_EQ(SweepSignature(direct), SweepSignature(result));
}

// Attempt timing is execution only: checkpoint writes and resume restores
// are timed in their own buckets, and restored cells report zero.
TEST(SweepRunnerTest, AttemptTimingExcludesCheckpointAndResume) {
  const SweepSpec spec = TinySweep();
  const std::string path = "SWEEP_TEST_OBS_CKPT.json";
  std::remove(path.c_str());

  SweepConfig first;
  first.threads = 2;
  first.checkpoint_path = path;
  first.halt_after_cells = 2;
  const SweepResult partial = SweepRunner(first).Run(spec);
  EXPECT_GT(partial.checkpoint_write_ms, 0.0);
  ASSERT_NE(partial.stage_stats.Find("checkpoint_write"), nullptr);
  // Two per-cell saves plus the final save at the halt.
  EXPECT_GE(partial.stage_stats.Find("checkpoint_write")->count, 2);
  EXPECT_EQ(partial.resume_restore_ms, 0.0);

  SweepConfig second = first;
  second.halt_after_cells = 0;
  second.resume = true;
  const SweepResult resumed = SweepRunner(second).Run(spec);
  EXPECT_EQ(std::remove(path.c_str()), 0);

  EXPECT_EQ(resumed.cells_resumed, 2);
  EXPECT_GT(resumed.resume_restore_ms, 0.0);
  ASSERT_NE(resumed.stage_stats.Find("resume_restore"), nullptr);
  int fresh = 0;
  for (const SweepCellResult& cell : resumed.cells) {
    ASSERT_TRUE(cell.outcome.ok) << cell.cell.spec.name;
    if (cell.outcome.resumed) {
      EXPECT_EQ(cell.outcome.attempt_ms, 0.0) << cell.cell.spec.name;
      EXPECT_EQ(cell.outcome.total_attempt_ms, 0.0);
    } else {
      ++fresh;
      EXPECT_GT(cell.outcome.attempt_ms, 0.0) << cell.cell.spec.name;
    }
  }
  EXPECT_EQ(fresh, 2);
  // The full run and the interrupted+resumed run agree bit-for-bit.
  SweepConfig plain;
  plain.threads = 2;
  EXPECT_EQ(SweepSignature(resumed), SweepSignature(SweepRunner(plain).Run(spec)));
}

// A retried cell's final-attempt time excludes the failed attempt, which
// still shows up in the all-attempts total.
TEST(SweepRunnerTest, RetriedCellAccumulatesTotalAttemptTime) {
  const SweepSpec spec = TinySweep();
  SweepConfig config;
  config.threads = 2;
  config.fault.fail_cell = 1;
  config.fault.fail_attempts = 1;
  const SweepResult result = SweepRunner(config).Run(spec);
  ASSERT_EQ(result.cells.size(), 4u);
  EXPECT_EQ(result.cells_retried, 1);
  const CellOutcome& outcome = result.cells[1].outcome;
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_GT(outcome.attempt_ms, 0.0);
  EXPECT_GT(outcome.total_attempt_ms, outcome.attempt_ms);
  for (std::size_t c = 0; c < result.cells.size(); ++c) {
    if (c == 1) continue;
    const CellOutcome& other = result.cells[c].outcome;
    EXPECT_EQ(other.attempts, 1);
    EXPECT_DOUBLE_EQ(other.total_attempt_ms, other.attempt_ms);
  }
}

// The acceptance bar for the timing breakdown: run serially, a cell's
// summed stage times account for its attempt wall time (the untimed
// remainder is queue handoff + aggregation, small at instances=6).
TEST(SweepRunnerTest, StageBreakdownCoversCellWallTimeSerially) {
  SweepSpec spec = TinySweep();
  spec.base.instances = 6;
  SweepConfig config;
  config.threads = 1;
  const SweepResult result = SweepRunner(config).Run(spec);
  ASSERT_EQ(result.cells.size(), 4u);
  for (const SweepCellResult& cell : result.cells) {
    ASSERT_TRUE(cell.outcome.ok) << cell.cell.spec.name;
    const double stage_ms = cell.result.stage_stats.TotalMs();
    const double wall_ms = cell.outcome.attempt_ms;
    EXPECT_GT(stage_ms, 0.0) << cell.cell.spec.name;
    // Stages nest strictly inside the attempt; allow tiny clock skew up.
    EXPECT_LE(stage_ms, wall_ms * 1.02 + 0.5) << cell.cell.spec.name;
    // And they account for at least 90% of it (modulo an absolute floor
    // for sub-millisecond cells).
    EXPECT_GE(stage_ms, wall_ms * 0.9 - 0.5) << cell.cell.spec.name;
  }
}

TEST(SweepReportTest, JsonReportWritesEngineCompatibleFile) {
  SweepSpec spec = TinySweep();
  spec.tasks = {engine::TaskKind::kAlgorithm1};
  SweepConfig config;
  config.threads = 1;
  const SweepResult result = SweepRunner(config).Run(spec);
  ASSERT_TRUE(WriteSweepJsonReport("SWEEP_TEST", {&result, 1}));
  const core::StatusOr<obs::BenchReportData> parsed =
      obs::LoadBenchReport("BENCH_SWEEP_TEST.json");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->bench, "SWEEP_TEST");
  EXPECT_EQ(parsed->schema, 2);
  // One batch/kernel_build/tasks phase triple per ok cell.
  EXPECT_EQ(parsed->phases.size(), 3 * result.cells.size());
  EXPECT_EQ(std::remove("BENCH_SWEEP_TEST.json"), 0);
}

}  // namespace
}  // namespace decaylib::sweep
