// BENCH v2 harness tests: sample statistics under an injected clock,
// provenance round trips, strict schema-v2 re-parse validation of written
// records, harness CLI flag parsing, counter-delta capture, and the
// noise-aware bench_compare verdict logic (regression / improvement /
// within-noise / missing- and new-phase handling).
#include "obs/bench_harness.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/bench_compare.h"
#include "obs/registry.h"

namespace decaylib::obs {
namespace {

// Injected clock: each call returns the next scripted instant, so Time()
// sample durations are exact.  Repeats the last step when the script runs
// out (min_time_ms loops decide termination from the returned values).
class FakeClock {
 public:
  explicit FakeClock(std::vector<double> instants)
      : instants_(std::move(instants)) {}

  double operator()() {
    if (next_ < instants_.size()) return instants_[next_++];
    last_ += 1.0;
    return last_;
  }

 private:
    std::vector<double> instants_;
  std::size_t next_ = 0;
  double last_ = 1e9;
};

// io::Json::Set appends (Find returns the first match), so "mutating" a
// key means rebuilding the object with the replacement in place.
io::Json WithMember(const io::Json& object, const std::string& key,
                    io::Json value) {
  io::Json rebuilt = io::Json::Object();
  for (const auto& [name, member] : object.Members()) {
    rebuilt.Set(name, name == key ? std::move(value) : member);
  }
  return rebuilt;
}

// Every test restores the process-global obs enable flag (harness Time()
// toggles it around each phase; a failing expectation must not leak state).
class BenchHarnessTest : public ::testing::Test {
 protected:
  void TearDown() override { SetEnabled(false); }
};

TEST_F(BenchHarnessTest, SampleStatsFromSamples) {
  const std::vector<double> samples = {50.0, 10.0, 40.0, 20.0, 30.0};
  const SampleStats stats = SampleStats::FromSamples(samples);
  EXPECT_EQ(stats.reps, 5);
  EXPECT_DOUBLE_EQ(stats.total_ms, 150.0);
  EXPECT_DOUBLE_EQ(stats.min_ms, 10.0);
  EXPECT_DOUBLE_EQ(stats.mean_ms, 30.0);
  EXPECT_DOUBLE_EQ(stats.median_ms, 30.0);
  // p90 over sorted {10,20,30,40,50}: rank 0.9 * 4 = 3.6 -> 40 + 0.6 * 10.
  EXPECT_DOUBLE_EQ(stats.p90_ms, 46.0);
  // Population stddev: sqrt(mean of squared deviations) = sqrt(200).
  EXPECT_DOUBLE_EQ(stats.stddev_ms, std::sqrt(200.0));
}

TEST_F(BenchHarnessTest, SampleStatsSingleSampleHasZeroSpread) {
  const std::vector<double> one = {7.25};
  const SampleStats stats = SampleStats::FromSamples(one);
  EXPECT_EQ(stats.reps, 1);
  EXPECT_DOUBLE_EQ(stats.min_ms, 7.25);
  EXPECT_DOUBLE_EQ(stats.mean_ms, 7.25);
  EXPECT_DOUBLE_EQ(stats.median_ms, 7.25);
  EXPECT_DOUBLE_EQ(stats.p90_ms, 7.25);
  EXPECT_DOUBLE_EQ(stats.stddev_ms, 0.0);
}

TEST_F(BenchHarnessTest, TimeUsesInjectedClockPerSample) {
  // Three reps, one warmup.  The warmup run is untimed (no clock reads);
  // each timed sample reads the clock twice: durations 10, 20, 30.
  BenchHarness harness(
      "CLOCKED", BenchHarness::Options{.reps = 3, .warmup = 1},
      FakeClock({0.0, 10.0, 10.0, 30.0, 30.0, 60.0}));
  int calls = 0;
  const SampleStats stats = harness.Time("phase", 42, [&] { ++calls; });
  EXPECT_EQ(calls, 4);  // 1 warmup + 3 timed
  EXPECT_EQ(stats.reps, 3);
  EXPECT_DOUBLE_EQ(stats.min_ms, 10.0);
  EXPECT_DOUBLE_EQ(stats.mean_ms, 20.0);
  EXPECT_DOUBLE_EQ(stats.median_ms, 20.0);
  EXPECT_DOUBLE_EQ(stats.total_ms, 60.0);
  ASSERT_EQ(harness.PhaseCount(), 1u);
}

TEST_F(BenchHarnessTest, MinTimeMsExtendsSampling) {
  // reps = 1 but min_time_ms = 25: 10ms samples keep coming until the
  // total clears 25ms -- three samples.
  BenchHarness harness(
      "MINTIME", BenchHarness::Options{.reps = 1, .min_time_ms = 25.0},
      FakeClock({0.0, 10.0, 10.0, 20.0, 20.0, 30.0}));
  const SampleStats stats = harness.Time("phase", 1, [] {});
  EXPECT_EQ(stats.reps, 3);
  EXPECT_DOUBLE_EQ(stats.total_ms, 30.0);
}

TEST_F(BenchHarnessTest, CliFlagsOverrideDefaults) {
  const char* argv[] = {"bench", "--json", "--reps", "5", "--warmup", "2",
                        "--min-time-ms", "12.5", "--other-flag"};
  BenchHarness harness("CLI", 9, const_cast<char**>(argv),
                       BenchHarness::Options{.reps = 2});
  EXPECT_TRUE(harness.args_ok());
  EXPECT_TRUE(harness.enabled());
  EXPECT_EQ(harness.options().reps, 5);
  EXPECT_EQ(harness.options().warmup, 2);
  EXPECT_DOUBLE_EQ(harness.options().min_time_ms, 12.5);
}

TEST_F(BenchHarnessTest, MalformedCliFlagClearsArgsOk) {
  const char* argv[] = {"bench", "--reps", "zero"};
  BenchHarness harness("CLI", 3, const_cast<char**>(argv));
  EXPECT_FALSE(harness.args_ok());
}

TEST_F(BenchHarnessTest, IsHarnessFlagClassifiesFlags) {
  bool takes_value = false;
  EXPECT_TRUE(BenchHarness::IsHarnessFlag("--json", &takes_value));
  EXPECT_FALSE(takes_value);
  EXPECT_TRUE(BenchHarness::IsHarnessFlag("--reps", &takes_value));
  EXPECT_TRUE(takes_value);
  EXPECT_TRUE(BenchHarness::IsHarnessFlag("--warmup", &takes_value));
  EXPECT_TRUE(BenchHarness::IsHarnessFlag("--min-time-ms", &takes_value));
  EXPECT_FALSE(BenchHarness::IsHarnessFlag("--links", &takes_value));
  EXPECT_FALSE(BenchHarness::IsHarnessFlag("--repsx", &takes_value));
}

TEST_F(BenchHarnessTest, ProvenanceJsonRoundTrips) {
  Provenance p;
  p.git_sha = "abc123";
  p.git_dirty = true;
  p.build_type = "Release";
  p.compiler = "gcc 12.2.0";
  p.ndebug = true;
  p.sanitizers = "address,undefined";
  p.hardware_threads = 16;
  p.hostname = "ci-runner-3";
  p.timestamp_utc = "2026-08-07T12:34:56Z";
  const auto parsed = Provenance::FromJson(p.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value(), p);
}

TEST_F(BenchHarnessTest, ProvenanceFromJsonRejectsMissingAndWrongKind) {
  const Provenance p = Provenance::Collect();
  EXPECT_FALSE(p.timestamp_utc.empty());

  io::Json missing = p.ToJson();
  io::Json without = io::Json::Object();
  for (const auto& [key, value] : missing.Members()) {
    if (key != "git_sha") without.Set(key, value);
  }
  EXPECT_FALSE(Provenance::FromJson(without).ok());

  const io::Json wrong_kind =
      WithMember(p.ToJson(), "git_dirty", io::Json::String("yes"));
  EXPECT_FALSE(Provenance::FromJson(wrong_kind).ok());
}

TEST_F(BenchHarnessTest, WrittenRecordReparsesAsSchemaV2) {
  BenchHarness harness("HARNESS_TEST",
                       BenchHarness::Options{.write_json = true});
  harness.Record("one_shot", 64, 3.5);
  harness.AddSamples("sampled", 128, {2.0, 1.0, 3.0},
                     {{"test.counter", 7}});
  io::Json extra = io::Json::Array();
  extra.Append(io::Json::Number(1.0));
  harness.SetExtra("scenarios", std::move(extra));
  EXPECT_EQ(harness.Close(), 0);

  const auto loaded = LoadBenchReport("BENCH_HARNESS_TEST.json");
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  const BenchReportData& data = loaded.value();
  EXPECT_EQ(data.bench, "HARNESS_TEST");
  EXPECT_EQ(data.schema, 2);
  EXPECT_FALSE(data.provenance.timestamp_utc.empty());
  ASSERT_EQ(data.phases.size(), 2u);

  const BenchPhaseRecord* one_shot = data.Find("one_shot");
  ASSERT_NE(one_shot, nullptr);
  EXPECT_EQ(one_shot->n, 64);
  EXPECT_DOUBLE_EQ(one_shot->stats.min_ms, 3.5);
  EXPECT_EQ(one_shot->samples_ms.size(), 1u);

  const BenchPhaseRecord* sampled = data.Find("sampled");
  ASSERT_NE(sampled, nullptr);
  EXPECT_DOUBLE_EQ(sampled->stats.min_ms, 1.0);
  EXPECT_DOUBLE_EQ(sampled->stats.median_ms, 2.0);
  EXPECT_EQ(sampled->counters.at("test.counter"), 7);
  EXPECT_EQ(data.Find("absent"), nullptr);

  std::remove("BENCH_HARNESS_TEST.json");
}

TEST_F(BenchHarnessTest, ParseBenchReportRejectsMalformedDocuments) {
  BenchHarness harness("VALID", BenchHarness::Options{});
  harness.Record("phase", 8, 1.0);
  const io::Json good = harness.ToJson();
  ASSERT_TRUE(ParseBenchReport(good).ok());

  const io::Json wrong_schema =
      WithMember(good, "schema", io::Json::Number(1.0));
  EXPECT_FALSE(ParseBenchReport(wrong_schema).ok());

  io::Json no_provenance = io::Json::Object();
  for (const auto& [key, value] : good.Members()) {
    if (key != "provenance") no_provenance.Set(key, value);
  }
  EXPECT_FALSE(ParseBenchReport(no_provenance).ok());

  io::Json phases = io::Json::Array();
  phases.Append(WithMember(good.Find("phases")->Items()[0], "samples_ms",
                           io::Json::Array()));
  const io::Json empty_samples =
      WithMember(good, "phases", std::move(phases));
  EXPECT_FALSE(ParseBenchReport(empty_samples).ok());
}

TEST_F(BenchHarnessTest, ReturnedStatsSurviveLaterPhases) {
  // Time()/AddSamples() return by value: stats taken from an early phase
  // must stay valid after enough later phases to force phases_ to
  // reallocate (the dangling-reference regression this guards against).
  BenchHarness harness("STABLE", BenchHarness::Options{});
  const SampleStats first = harness.AddSamples("first", 1, {5.0});
  for (int i = 0; i < 64; ++i) {
    harness.AddSamples("later_" + std::to_string(i), 1, {1.0});
  }
  EXPECT_DOUBLE_EQ(first.min_ms, 5.0);
  EXPECT_EQ(first.reps, 1);
}

TEST_F(BenchHarnessTest, ParseBenchReportRejectsInconsistentStats) {
  BenchHarness harness("CONSISTENT", BenchHarness::Options{});
  harness.AddSamples("phase", 8, {2.0, 1.0, 3.0});
  const io::Json good = harness.ToJson();
  ASSERT_TRUE(ParseBenchReport(good).ok());

  const auto with_phase_member = [&good](const std::string& key,
                                         io::Json value) {
    io::Json phases = io::Json::Array();
    phases.Append(WithMember(good.Find("phases")->Items()[0], key,
                             std::move(value)));
    return WithMember(good, "phases", std::move(phases));
  };

  // reps disagrees with the samples_ms count.
  const auto bad_reps =
      ParseBenchReport(with_phase_member("reps", io::Json::Number(2)));
  ASSERT_FALSE(bad_reps.ok());
  EXPECT_NE(bad_reps.status().message().find("reps"), std::string::npos);

  // A hand-edited min_ms the samples do not support.
  const auto bad_min =
      ParseBenchReport(with_phase_member("min_ms", io::Json::Number(0.5)));
  ASSERT_FALSE(bad_min.ok());
  EXPECT_NE(bad_min.status().message().find("min_ms"), std::string::npos);

  // A truncated sample list (stats still describe three samples).
  io::Json one_sample = io::Json::Array();
  one_sample.Append(io::Json::Number(1.0));
  EXPECT_FALSE(
      ParseBenchReport(with_phase_member("samples_ms", std::move(one_sample)))
          .ok());

  // stddev inconsistent with the (zero-spread) samples.
  BenchHarness flat("FLAT", BenchHarness::Options{});
  flat.AddSamples("phase", 8, {2.0, 2.0});
  io::Json flat_phases = io::Json::Array();
  flat_phases.Append(WithMember(flat.ToJson().Find("phases")->Items()[0],
                                "stddev_ms", io::Json::Number(1.0)));
  EXPECT_FALSE(
      ParseBenchReport(WithMember(flat.ToJson(), "phases",
                                  std::move(flat_phases)))
          .ok());
}

TEST_F(BenchHarnessTest, ScopedCounterCaptureReturnsNonzeroDeltas) {
  SetEnabled(false);
  Registry::Global().GetCounter("bench_test.captured").Reset();
  Registry::Global().GetCounter("bench_test.untouched").Reset();
  {
    ScopedCounterCapture capture;
    EXPECT_TRUE(Enabled());  // capture turns obs on for the timed section
    Registry::Global().GetCounter("bench_test.captured").Add(3);
    const std::map<std::string, long long> deltas = capture.Take();
    EXPECT_EQ(deltas.at("bench_test.captured"), 3);
    EXPECT_EQ(deltas.count("bench_test.untouched"), 0u);
  }
  EXPECT_FALSE(Enabled());  // previous (off) state restored
}

// --- bench_compare verdict logic ------------------------------------------

BenchReportData MakeReport(
    std::vector<std::tuple<std::string, double, double>> phases) {
  BenchReportData data;
  data.bench = "CMP";
  data.schema = 2;
  for (auto& [name, min_ms, stddev_ms] : phases) {
    BenchPhaseRecord record;
    record.name = name;
    record.n = 1;
    record.stats.reps = 1;
    record.stats.min_ms = min_ms;
    record.stats.mean_ms = min_ms;
    record.stats.median_ms = min_ms;
    record.stats.p90_ms = min_ms;
    record.stats.total_ms = min_ms;
    record.stats.stddev_ms = stddev_ms;
    record.samples_ms = {min_ms};
    data.phases.push_back(std::move(record));
  }
  return data;
}

TEST_F(BenchHarnessTest, CompareFlagsRegressionBeyondAllGuards) {
  const BenchReportData base = MakeReport({{"hot", 10.0, 0.5}});
  const BenchReportData cur = MakeReport({{"hot", 25.0, 0.5}});
  const CompareResult result = CompareBenchReports(base, cur, {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.regressions, 1);
  ASSERT_EQ(result.deltas.size(), 1u);
  EXPECT_EQ(result.deltas[0].verdict, DeltaVerdict::kRegression);
  EXPECT_DOUBLE_EQ(result.deltas[0].delta_ms, 15.0);
  EXPECT_DOUBLE_EQ(result.deltas[0].rel, 1.5);
}

TEST_F(BenchHarnessTest, CompareFlagsImprovementSymmetrically) {
  const BenchReportData base = MakeReport({{"hot", 20.0, 0.2}});
  const BenchReportData cur = MakeReport({{"hot", 10.0, 0.2}});
  const CompareResult result = CompareBenchReports(base, cur, {});
  EXPECT_TRUE(result.ok());  // improvements never fail the gate
  EXPECT_EQ(result.improvements, 1);
  EXPECT_EQ(result.deltas[0].verdict, DeltaVerdict::kImprovement);
}

TEST_F(BenchHarnessTest, CompareTreatsSubThresholdDeltasAsNoise) {
  // 20% over a 25% relative threshold: within noise even though the
  // absolute and sigma guards would fire.
  const BenchReportData base = MakeReport({{"rel_guard", 10.0, 0.01}});
  const BenchReportData cur = MakeReport({{"rel_guard", 12.0, 0.01}});
  EXPECT_EQ(CompareBenchReports(base, cur, {}).deltas[0].verdict,
            DeltaVerdict::kWithinNoise);

  // 3x but on a microsecond phase: below the 0.5ms absolute floor.
  const BenchReportData tiny_base = MakeReport({{"abs_guard", 0.1, 0.0}});
  const BenchReportData tiny_cur = MakeReport({{"abs_guard", 0.3, 0.0}});
  EXPECT_EQ(CompareBenchReports(tiny_base, tiny_cur, {}).deltas[0].verdict,
            DeltaVerdict::kWithinNoise);

  // Huge relative + absolute delta, but inside 3 sigma of a noisy run.
  const BenchReportData noisy_base = MakeReport({{"sigma_guard", 10.0, 8.0}});
  const BenchReportData noisy_cur = MakeReport({{"sigma_guard", 30.0, 8.0}});
  EXPECT_EQ(CompareBenchReports(noisy_base, noisy_cur, {}).deltas[0].verdict,
            DeltaVerdict::kWithinNoise);
}

TEST_F(BenchHarnessTest, CompareFlagsRegressionFromZeroBaseline) {
  // A sub-timer-resolution baseline (min_ms == 0) must not mask an
  // arbitrarily large slowdown: rel becomes +inf so the relative guard
  // passes and the sigma/absolute guards decide.
  const BenchReportData base = MakeReport({{"tiny", 0.0, 0.0}});
  const BenchReportData cur = MakeReport({{"tiny", 5.0, 0.1}});
  const CompareResult result = CompareBenchReports(base, cur, {});
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.deltas.size(), 1u);
  EXPECT_EQ(result.deltas[0].verdict, DeltaVerdict::kRegression);
  EXPECT_TRUE(std::isinf(result.deltas[0].rel));

  // Identical zero-baseline runs stay within noise.
  const BenchReportData same = MakeReport({{"tiny", 0.0, 0.0}});
  EXPECT_EQ(CompareBenchReports(base, same, {}).deltas[0].verdict,
            DeltaVerdict::kWithinNoise);
}

TEST_F(BenchHarnessTest, CompareHandlesMissingAndNewPhases) {
  const BenchReportData base = MakeReport({{"kept", 5.0, 0.1},
                                           {"removed", 5.0, 0.1}});
  const BenchReportData cur = MakeReport({{"kept", 5.0, 0.1},
                                          {"added", 5.0, 0.1}});
  const CompareResult strict = CompareBenchReports(base, cur, {});
  EXPECT_FALSE(strict.ok());  // a vanished phase is a regression by default
  ASSERT_EQ(strict.deltas.size(), 3u);
  EXPECT_EQ(strict.deltas[0].verdict, DeltaVerdict::kWithinNoise);
  EXPECT_EQ(strict.deltas[1].verdict, DeltaVerdict::kMissingPhase);
  EXPECT_EQ(strict.deltas[2].verdict, DeltaVerdict::kNewPhase);

  CompareOptions lenient;
  lenient.allow_missing = true;
  EXPECT_TRUE(CompareBenchReports(base, cur, lenient).ok());
}

TEST_F(BenchHarnessTest, CompareMarkdownTableSummarisesVerdicts) {
  const BenchReportData base = MakeReport({{"hot", 10.0, 0.1}});
  const BenchReportData cur = MakeReport({{"hot", 25.0, 0.1}});
  const CompareResult result = CompareBenchReports(base, cur, {});
  const std::string table = CompareMarkdownTable(result, "CMP");
  EXPECT_NE(table.find("### CMP"), std::string::npos);
  EXPECT_NE(table.find("| hot |"), std::string::npos);
  EXPECT_NE(table.find("regression"), std::string::npos);
  EXPECT_NE(table.find("1 regression(s)"), std::string::npos);
}

TEST_F(BenchHarnessTest, CompareSurfacesProvenanceMismatches) {
  BenchReportData base = MakeReport({{"hot", 5.0, 0.1}});
  BenchReportData cur = MakeReport({{"hot", 5.0, 0.1}});
  base.provenance.build_type = "Release";
  cur.provenance.build_type = "Assert";
  base.provenance.hostname = "host-a";
  cur.provenance.hostname = "host-b";
  const CompareResult result = CompareBenchReports(base, cur, {});
  EXPECT_TRUE(result.ok());  // warnings, not failures
  EXPECT_GE(result.provenance_warnings.size(), 2u);
}

#ifndef NDEBUG
TEST(BenchTableDeathTest, AddRowRejectsArityMismatch) {
  bench::Table table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "arity");
}
#endif

}  // namespace
}  // namespace decaylib::obs
