#include "measurement/rssi.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/metricity.h"
#include "geom/samplers.h"
#include "measurement/prr.h"
#include "spaces/samplers.h"

namespace decaylib::measurement {
namespace {

core::DecaySpace SmallTruth(std::uint64_t seed) {
  geom::Rng rng(seed);
  const auto pts = geom::SampleUniform(10, 8.0, 8.0, rng);
  return core::DecaySpace::Geometric(pts, 2.5);
}

TEST(RssiTest, NoiselessUnquantisedRoundTripIsExact) {
  const core::DecaySpace truth = SmallTruth(1);
  RssiConfig config;
  config.quantization_db = 0.0;
  config.noise_sigma_db = 0.0;
  config.sensitivity_dbm = -1000.0;
  geom::Rng rng(2);
  const RssiTable table = SimulateRssi(truth, config, rng);
  const core::DecaySpace inferred = InferDecayFromRssi(table, config);
  for (int u = 0; u < truth.size(); ++u) {
    for (int v = 0; v < truth.size(); ++v) {
      if (u != v) {
        EXPECT_NEAR(inferred(u, v) / truth(u, v), 1.0, 1e-9);
      }
    }
  }
}

TEST(RssiTest, QuantisationErrorBounded) {
  const core::DecaySpace truth = SmallTruth(3);
  RssiConfig config;
  config.quantization_db = 1.0;
  config.noise_sigma_db = 0.0;
  config.sensitivity_dbm = -1000.0;
  geom::Rng rng(4);
  const RssiTable table = SimulateRssi(truth, config, rng);
  const core::DecaySpace inferred = InferDecayFromRssi(table, config);
  // Half a dB of rounding = factor 10^{0.05} ~ 1.122 either way.
  const double tol = std::pow(10.0, 0.051);
  for (int u = 0; u < truth.size(); ++u) {
    for (int v = 0; v < truth.size(); ++v) {
      if (u == v) continue;
      const double ratio = inferred(u, v) / truth(u, v);
      EXPECT_LE(ratio, tol);
      EXPECT_GE(ratio, 1.0 / tol);
    }
  }
}

TEST(RssiTest, CensoringKicksInForWeakLinks) {
  core::DecaySpace truth(2);
  truth.SetSymmetric(0, 1, 1e12);  // -120 dBm at tx 0: below sensitivity
  RssiConfig config;
  config.sensitivity_dbm = -95.0;
  config.noise_sigma_db = 0.0;
  geom::Rng rng(5);
  const RssiTable table = SimulateRssi(truth, config, rng);
  EXPECT_FALSE(table[0][1].has_value());
  EXPECT_DOUBLE_EQ(CensoredFraction(table), 1.0);
  const core::DecaySpace inferred = InferDecayFromRssi(table, config, 1e15);
  EXPECT_DOUBLE_EQ(inferred(0, 1), 1e15);
}

TEST(RssiTest, AveragingReducesNoise) {
  const core::DecaySpace truth = SmallTruth(6);
  RssiConfig one;
  one.readings_per_pair = 1;
  one.quantization_db = 0.0;
  one.noise_sigma_db = 4.0;
  one.sensitivity_dbm = -1000.0;
  RssiConfig many = one;
  many.readings_per_pair = 64;

  auto mean_abs_error = [&](const RssiConfig& config, std::uint64_t seed) {
    geom::Rng rng(seed);
    const RssiTable table = SimulateRssi(truth, config, rng);
    const core::DecaySpace inferred = InferDecayFromRssi(table, config);
    double total = 0.0;
    int count = 0;
    for (int u = 0; u < truth.size(); ++u) {
      for (int v = 0; v < truth.size(); ++v) {
        if (u == v) continue;
        total += std::abs(10.0 * std::log10(inferred(u, v) / truth(u, v)));
        ++count;
      }
    }
    return total / count;
  };
  EXPECT_LT(mean_abs_error(many, 7), mean_abs_error(one, 7));
}

TEST(CaptureModelTest, MonotoneInSinr) {
  const CaptureModel capture{2.0, 8.0};
  EXPECT_DOUBLE_EQ(capture.ReceptionProbability(0.0), 0.0);
  EXPECT_LT(capture.ReceptionProbability(1.0),
            capture.ReceptionProbability(2.0));
  EXPECT_DOUBLE_EQ(capture.ReceptionProbability(2.0), 0.5);  // at beta
  EXPECT_GT(capture.ReceptionProbability(20.0), 0.95);
  EXPECT_LT(capture.ReceptionProbability(0.2), 0.05);
}

TEST(PrrTest, StrongLinksHaveHighPrr) {
  core::DecaySpace truth(2);
  truth.SetSymmetric(0, 1, 10.0);  // SINR = 1/(1e-6*10) = 1e5 >> beta
  PrrConfig config;
  geom::Rng rng(8);
  const auto prr = SimulatePrr(truth, config, rng);
  EXPECT_GT(prr[0][1], 0.99);
}

TEST(PrrTest, InversionRecoversDecayInTheActiveRegion) {
  // PRR inversion is informative where the logistic is not saturated:
  // pick decays so SINR sits near beta.
  PrrConfig config;
  config.probes = 2000;
  config.noise = 1e-2;
  // SINR = 1 / (noise * f); f = 50 -> SINR = 2 = beta (50% PRR).
  core::DecaySpace truth(3);
  truth.SetSymmetric(0, 1, 50.0);
  truth.SetSymmetric(0, 2, 30.0);
  truth.SetSymmetric(1, 2, 80.0);
  geom::Rng rng(9);
  const auto prr = SimulatePrr(truth, config, rng);
  const core::DecaySpace inferred = InferDecayFromPrr(prr, config);
  for (int u = 0; u < 3; ++u) {
    for (int v = 0; v < 3; ++v) {
      if (u == v) continue;
      EXPECT_NEAR(std::log(inferred(u, v) / truth(u, v)), 0.0, 0.2)
          << u << "," << v;
    }
  }
}

TEST(PrrTest, SaturatedRatesClampToFiniteDecay) {
  PrrConfig config;
  config.probes = 100;
  core::DecaySpace truth(2);
  truth.SetSymmetric(0, 1, 1.0);  // overwhelming SINR: PRR = 1
  geom::Rng rng(10);
  const auto prr = SimulatePrr(truth, config, rng);
  EXPECT_DOUBLE_EQ(prr[0][1], 1.0);
  const core::DecaySpace inferred = InferDecayFromPrr(prr, config);
  EXPECT_TRUE(std::isfinite(inferred(0, 1)));
  EXPECT_GT(inferred(0, 1), 0.0);
}

TEST(MeasurementIntegrationTest, InferredMetricityTracksTruth) {
  // End-to-end: a shadowed space measured via RSSI keeps its metricity
  // within quantisation slack.
  geom::Rng rng(11);
  const auto pts = geom::SampleUniform(12, 10.0, 10.0, rng);
  geom::Rng rng2(12);
  const core::DecaySpace truth =
      spaces::ShadowedGeometric(pts, 2.8, 5.0, rng2, true);
  RssiConfig config;
  config.quantization_db = 0.5;
  config.noise_sigma_db = 0.25;
  config.readings_per_pair = 16;
  config.sensitivity_dbm = -1000.0;
  geom::Rng rng3(13);
  const RssiTable table = SimulateRssi(truth, config, rng3);
  const core::DecaySpace inferred = InferDecayFromRssi(table, config);
  const double zeta_truth = core::Metricity(truth);
  const double zeta_inferred = core::Metricity(inferred);
  EXPECT_NEAR(zeta_inferred, zeta_truth, 0.35 * zeta_truth);
}

}  // namespace
}  // namespace decaylib::measurement
