// Shared helpers for the experiment benches: markdown table printing, common
// instance builders, and wall-clock timing.  The machine-readable --json
// reporting mode lives in obs/bench_harness.h (BENCH schema v2).
#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/check.h"
#include "core/decay_space.h"
#include "geom/rng.h"
#include "sinr/link_system.h"

namespace decaylib::bench {

// M_PI is a POSIX extension, not standard C++; keep a local constant.
inline constexpr double kPi = 3.14159265358979323846;

// Prints a markdown table row-by-row with right-aligned cells.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    DL_CHECK(cells.size() == headers_.size(),
             "table row arity must match the header");
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    PrintRow(headers_, width);
    std::string sep = "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      sep += std::string(width[c] + 2, '-') + "|";
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) PrintRow(row, width);
  }

 private:
  static void PrintRow(const std::vector<std::string>& row,
                       const std::vector<std::size_t>& width) {
    std::string line = "|";
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      line += " " + std::string(width[c] - cell.size(), ' ') + cell + " |";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int digits = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

inline std::string FmtSci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

inline std::string FmtInt(long long v) { return std::to_string(v); }

inline void Banner(const char* id, const char* title, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s: %s\n", id, title);
  std::printf("Paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

// Monotonic wall clock in milliseconds.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void Reset() { start_ = std::chrono::steady_clock::now(); }

  double ElapsedMs() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// A random planar link deployment: link i occupies nodes 2i (sender) and
// 2i+1 (receiver), with lengths in [min_len, max_len] and senders uniform in
// a box x box square.
struct PlanarDeployment {
  std::vector<geom::Vec2> points;
  std::vector<sinr::Link> links;

  PlanarDeployment(int link_count, double box, double min_len, double max_len,
                   geom::Rng& rng) {
    points.reserve(2 * static_cast<std::size_t>(link_count));
    links.reserve(static_cast<std::size_t>(link_count));
    for (int i = 0; i < link_count; ++i) {
      const geom::Vec2 s{rng.Uniform(0.0, box), rng.Uniform(0.0, box)};
      const double angle = rng.Uniform(0.0, 2.0 * kPi);
      const double len = rng.Uniform(min_len, max_len);
      points.push_back(s);
      points.push_back(s + geom::Vec2{len, 0.0}.Rotated(angle));
      links.push_back({2 * i, 2 * i + 1});
    }
  }
};

}  // namespace decaylib::bench
