// E6 -- The partition lemmas (Appendix B: Lemmas B.1, B.2, B.3, 4.1).
//
// For feasible sets extracted from random planar deployments:
//  * signal strengthening splits a 1-feasible set into q-feasible classes,
//    count <= ceil(2q)^2;
//  * e^2/beta-feasible sets are 1/zeta-separated (Lemma B.2) -- verified;
//  * separation amplification to eta-separated classes, count O((eta tau)^A');
//  * the composition (Lemma 4.1) yields zeta-separated classes, count
//    O(zeta^{2A'}).
#include <cstdio>

#include "bench_util.h"
#include "capacity/baselines.h"
#include "capacity/partitions.h"
#include "core/metricity.h"
#include "sinr/power.h"

using namespace decaylib;

int main() {
  bench::Banner("E6", "Partition lemmas B.1/B.2/B.3/4.1",
                "feasible sets split into O(zeta^{2A'}) zeta-separated "
                "classes");

  {
    std::printf("\n(a) Lemma B.1 signal strengthening (|S| from greedy, "
                "alpha = 3)\n\n");
    bench::Table table({"q", "|S|", "classes", "bound ceil(2q)^2",
                        "all q-feasible"});
    geom::Rng rng(1);
    bench::PlanarDeployment dep(40, 22.0, 0.5, 1.2, rng);
    const core::DecaySpace space =
        core::DecaySpace::Geometric(dep.points, 3.0);
    const sinr::LinkSystem system(space, dep.links, {1.0, 0.0});
    const auto power = sinr::UniformPower(system);
    const auto S = capacity::GreedyFeasible(system);
    for (const double q : {2.0, 4.0, 8.0, 16.0}) {
      const auto classes =
          capacity::SignalStrengthen(system, S, power, 1.0, q);
      bool all_ok = true;
      for (const auto& cls : classes) {
        if (!system.IsKFeasible(cls, q, power)) all_ok = false;
      }
      const double bound = std::ceil(2.0 * q) * std::ceil(2.0 * q);
      table.AddRow({bench::Fmt(q, 0),
                    bench::FmtInt(static_cast<long long>(S.size())),
                    bench::FmtInt(static_cast<long long>(classes.size())),
                    bench::Fmt(bound, 0), all_ok ? "yes" : "NO"});
    }
    table.Print();
  }

  {
    std::printf("\n(b) Lemma B.2 + B.3 + 4.1 across alpha (zeta = "
                "metricity)\n\n");
    bench::Table table({"alpha", "zeta", "|S|", "B.2 separated",
                        "4.1 classes", "all zeta-separated", "zeta^2 (ref)"});
    for (const double alpha : {2.0, 3.0, 4.0, 6.0}) {
      geom::Rng rng(static_cast<std::uint64_t>(alpha * 10));
      bench::PlanarDeployment dep(40, 22.0, 0.5, 1.2, rng);
      const core::DecaySpace space =
          core::DecaySpace::Geometric(dep.points, alpha);
      const double zeta = std::max(1.0, core::Metricity(space));
      const sinr::LinkSystem system(space, dep.links, {1.0, 0.0});
      const auto power = sinr::UniformPower(system);

      // Lemma B.2 check on an e^2-feasible greedy set.
      std::vector<int> strong;
      for (int v = 0; v < system.NumLinks(); ++v) {
        strong.push_back(v);
        if (!system.IsKFeasible(strong, std::exp(2.0), power)) {
          strong.pop_back();
        }
      }
      const bool b2 = system.IsSeparatedSet(strong, 1.0 / zeta, zeta);

      const auto S = capacity::GreedyFeasible(system);
      const auto classes = capacity::Lemma41Partition(system, S, zeta);
      bool all_sep = true;
      for (const auto& cls : classes) {
        if (!system.IsSeparatedSet(cls, zeta, zeta)) all_sep = false;
      }
      table.AddRow({bench::Fmt(alpha, 1), bench::Fmt(zeta),
                    bench::FmtInt(static_cast<long long>(S.size())),
                    b2 ? "yes" : "NO",
                    bench::FmtInt(static_cast<long long>(classes.size())),
                    all_sep ? "yes" : "NO", bench::Fmt(zeta * zeta, 1)});
    }
    table.Print();
  }

  std::printf(
      "\nExpected shape: class counts far below the ceil(2q)^2 worst case "
      "and polynomial in zeta;\nevery class certified q-feasible / "
      "zeta-separated; B.2 separation holds on all rows.\n");
  return 0;
}
