// E2 -- Theory transfer (Proposition 1).
//
// Running any metric-properties-only algorithm on a decay space D is the
// same as running it on the induced quasi-metric D' = (V, f^{1/zeta}) with
// path loss constant zeta.  We verify the strongest form -- identical
// outputs after a D -> D' -> D round trip -- and show the complexity knob:
// the same algorithm's approximation ratio (vs exact OPT) tracks zeta on
// measured-style spaces exactly as it tracked alpha on geometric ones.
#include <cstdio>

#include "bench_util.h"
#include "capacity/algorithm1.h"
#include "capacity/baselines.h"
#include "capacity/exact.h"
#include "core/metricity.h"
#include "sinr/power.h"
#include "spaces/samplers.h"

using namespace decaylib;

int main() {
  bench::Banner("E2", "Theory transfer to decay spaces",
                "results transfer verbatim with alpha -> zeta (Prop. 1)");

  {
    std::printf(
        "\n(a) Round-trip identity: algorithm outputs on D vs on the "
        "re-embedded quasi-metric\n\n");
    bench::Table table({"seed", "zeta", "alg1 identical", "greedy identical"});
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      geom::Rng rng(seed);
      bench::PlanarDeployment dep(16, 20.0, 0.6, 1.4, rng);
      geom::Rng shadow(seed + 100);
      const core::DecaySpace noisy =
          spaces::ShadowedGeometric(dep.points, 3.0, 6.0, shadow, true);
      const double zeta = core::Metricity(noisy);
      const core::QuasiMetric d(noisy, zeta);
      const core::DecaySpace rebuilt =
          core::DecaySpace::FromDistancePower(d.Matrix(), zeta);
      const sinr::LinkSystem sys_a(noisy, dep.links, {1.0, 0.0});
      const sinr::LinkSystem sys_b(rebuilt, dep.links, {1.0, 0.0});
      const bool alg1_same =
          capacity::RunAlgorithm1(sys_a, zeta).selected ==
          capacity::RunAlgorithm1(sys_b, zeta).selected;
      const bool greedy_same =
          capacity::GreedyFeasible(sys_a) == capacity::GreedyFeasible(sys_b);
      table.AddRow({bench::FmtInt(static_cast<long long>(seed)),
                    bench::Fmt(zeta), alg1_same ? "yes" : "NO",
                    greedy_same ? "yes" : "NO"});
    }
    table.Print();
  }

  {
    std::printf(
        "\n(b) Approximation ratio vs metricity: same algorithm, spaces of "
        "growing zeta\n    (16 links, OPT by branch and bound, mean of 5 "
        "seeds)\n\n");
    bench::Table table({"space", "mean zeta", "OPT/alg1", "OPT/greedy"});
    struct Config {
      const char* name;
      double alpha;
      double sigma_db;
    };
    const Config configs[] = {{"geometric a=2", 2.0, 0.0},
                              {"geometric a=3", 3.0, 0.0},
                              {"shadowed a=3 s=4", 3.0, 4.0},
                              {"shadowed a=3 s=8", 3.0, 8.0},
                              {"shadowed a=3 s=12", 3.0, 12.0}};
    for (const Config& config : configs) {
      double zeta_sum = 0.0;
      double ratio_alg1 = 0.0;
      double ratio_greedy = 0.0;
      const int trials = 5;
      for (std::uint64_t seed = 1; seed <= trials; ++seed) {
        geom::Rng rng(seed);
        bench::PlanarDeployment dep(16, 14.0, 0.6, 1.4, rng);
        geom::Rng shadow(seed + 50);
        const core::DecaySpace space =
            config.sigma_db == 0.0
                ? core::DecaySpace::Geometric(dep.points, config.alpha)
                : spaces::ShadowedGeometric(dep.points, config.alpha,
                                            config.sigma_db, shadow, true);
        const double zeta = std::max(1.0, core::Metricity(space));
        zeta_sum += zeta;
        const sinr::LinkSystem system(space, dep.links, {1.0, 0.0});
        const auto opt = capacity::ExactCapacityUniform(system);
        const auto alg1 = capacity::RunAlgorithm1(system, zeta).selected;
        const auto greedy = capacity::GreedyFeasible(system);
        ratio_alg1 += static_cast<double>(opt.size()) /
                      std::max<std::size_t>(1, alg1.size());
        ratio_greedy += static_cast<double>(opt.size()) /
                        std::max<std::size_t>(1, greedy.size());
      }
      table.AddRow({config.name, bench::Fmt(zeta_sum / trials),
                    bench::Fmt(ratio_alg1 / trials),
                    bench::Fmt(ratio_greedy / trials)});
    }
    table.Print();
  }

  std::printf(
      "\nExpected shape: every round trip identical; approximation ratios "
      "degrade as zeta grows,\nmirroring the alpha-dependence of the "
      "original GEO-SINR guarantees.\n");
  return 0;
}
