// E21 -- dynamics over cached kernels: queue/regret naive-vs-cached A/B.
//
// The queueing simulator (transfer list [2, 3, 44]) and the Asgeirsson-
// Mitra regret game ran per-slot LinkSystem queries -- every feasibility
// probe of the LQF/greedy admission re-summed O(|S|^2) affectance terms
// from the decay space, and every random-access/regret success check
// re-derived its interference column.  The cached paths build one
// sinr::KernelCache per instance and run greedy admission through an
// AffectanceAccumulator (O(n) per admission) and SINR checks off the
// cached cross-decay matrix.
//
// For each workload (queue x {lqf, greedy, random}, regret) the bench runs
// the naive reference and the cached path from the same seed and exits 1
// unless every statistic -- counters, rates, final queues, transmit
// probabilities -- is bit-identical; only then does it quote wall-clock.
// The cached timings come in two flavours: "cached" INCLUDES the per-run
// kernel build (the honest standalone per-instance cost), while "warm" runs
// against a prebuilt kernel -- the batch engine's marginal cost, since one
// instance kernel is shared by every task of the batch.
//
// Flags: --links <n> (default 512), --slots <queue slots> (default 200),
//        --lambda <arrival rate> (default 0.2, overloads the default n so
//        the admission loops actually work), --rounds <regret rounds>
//        (default 300), --repeat <best-of> (default 3; becomes the
//        harness's default sample count), plus the obs::BenchHarness flags
//        --json (write BENCH_E21.json, schema v2), --reps/--warmup/
//        --min-time-ms (override --repeat's sampling).
//
// Run in a Release build; the Assert build's DL_CHECK instrumentation
// dominates the naive inner loops.
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "distributed/regret_game.h"
#include "dynamics/queue_system.h"
#include "obs/bench_harness.h"
#include "sinr/kernel.h"
#include "sinr/power.h"
#include "tool_args.h"

using namespace decaylib;

namespace {

constexpr std::uint64_t kSeed = 2121;

}  // namespace

int main(int argc, char** argv) {
  int links = 512;
  int slots = 200;
  int rounds = 300;
  int repeat = 3;
  double lambda = 0.2;
  bool parse_ok = true;
  for (int i = 1; i < argc && parse_ok; ++i) {
    if (std::strcmp(argv[i], "--links") == 0 && i + 1 < argc) {
      parse_ok = tools::ParseIntFlag("--links", argv[++i], 2, 1 << 16, &links);
    } else if (std::strcmp(argv[i], "--slots") == 0 && i + 1 < argc) {
      parse_ok = tools::ParseIntFlag("--slots", argv[++i], 4, 1 << 20, &slots);
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      parse_ok =
          tools::ParseIntFlag("--rounds", argv[++i], 4, 1 << 20, &rounds);
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      parse_ok = tools::ParseIntFlag("--repeat", argv[++i], 1, 1000, &repeat);
    } else if (std::strcmp(argv[i], "--lambda") == 0 && i + 1 < argc) {
      parse_ok = tools::ParseDoubleFlag("--lambda", argv[++i], 0.0, 1.0,
                                        &lambda);
    } else {
      bool harness_flag_value = false;
      if (obs::BenchHarness::IsHarnessFlag(argv[i], &harness_flag_value)) {
        if (harness_flag_value) ++i;  // the harness validates the value
      } else {
        parse_ok = false;
      }
    }
  }
  // --repeat becomes the harness's default sample count, so "best of R"
  // turns into R timed samples per phase (min_ms is the quoted number;
  // --reps overrides).
  obs::BenchHarness report("E21", argc, argv,
                           obs::BenchHarness::Options{.reps = repeat});
  if (!parse_ok || !report.args_ok()) {
    std::fprintf(stderr,
                 "usage: %s [--links N] [--slots S] [--lambda L] [--rounds R] "
                 "[--repeat K] [--json] [--reps N] [--warmup N] "
                 "[--min-time-ms T]\n",
                 argv[0]);
    return 2;
  }

  bench::Banner("E21", "Dynamics over cached kernels: queue + regret A/B",
                "per-slot feasibility/SINR via one warm kernel per instance; "
                "bit-identical trajectories, >= 2x per-instance LQF speedup");

  // One planar deployment at constant density (the e14 recipe, scaled).
  geom::Rng deploy_rng(kSeed);
  const double box = 2.0 * std::sqrt(2.0 * static_cast<double>(links));
  bench::PlanarDeployment dep(links, box, 0.6, 1.2, deploy_rng);
  const core::DecaySpace space = core::DecaySpace::Geometric(dep.points, 3.0);
  const sinr::LinkSystem system(space, dep.links, {2.0, 0.0});

  std::printf("\nn = %d links, %d queue slots at lambda = %g, %d regret "
              "rounds, best of %d\n\n",
              links, slots, lambda, rounds, report.options().reps);

  bench::Table table(
      {"workload", "naive ms", "cached ms", "warm ms", "speedup"});

  // Best-of-R timing of one simulation path: R harness samples (every run
  // restarts the rng from the fixed seed, so repeats are bit-identical
  // re-executions) with min_ms as the quoted number.
  const auto best_of = [&](const std::string& phase, auto&& run) {
    return report.Time(phase, links, run).min_ms;
  };

  double lqf_naive_ms = 0.0;
  double lqf_cached_ms = 0.0;

  const struct {
    dynamics::Scheduler scheduler;
    const char* label;
  } queue_cases[] = {
      {dynamics::Scheduler::kLongestQueueFirst, "queue lqf"},
      {dynamics::Scheduler::kGreedyByDecay, "queue greedy"},
      {dynamics::Scheduler::kRandomAccess, "queue random"},
  };
  for (const auto& qc : queue_cases) {
    const dynamics::QueueConfig config =
        dynamics::UniformArrivals(system, lambda, qc.scheduler, slots);

    // Bit-exactness gate first; the timing below re-runs the same bits.
    dynamics::QueueStats naive_stats, cached_stats;
    {
      geom::Rng rng(kSeed + 7);
      naive_stats = dynamics::RunQueueSimulationNaive(system, config, rng);
    }
    {
      geom::Rng rng(kSeed + 7);
      const sinr::KernelCache kernel(system, sinr::UniformPower(system));
      cached_stats = dynamics::RunQueueSimulation(kernel, config, rng);
    }
    if (!(naive_stats == cached_stats)) {
      std::printf("ERROR: %s: cached statistics differ from the naive "
                  "reference\n",
                  qc.label);
      return 1;
    }

    const std::string phase_prefix =
        std::string("queue_") + dynamics::SchedulerName(qc.scheduler);
    const double naive_ms = best_of(phase_prefix + "_naive", [&] {
      geom::Rng rng(kSeed + 7);
      volatile double sink =
          dynamics::RunQueueSimulationNaive(system, config, rng).throughput;
      (void)sink;
    });
    // Standalone per-instance cost: the kernel build is inside the timer.
    const double cached_ms = best_of(phase_prefix + "_cached", [&] {
      geom::Rng rng(kSeed + 7);
      const sinr::KernelCache kernel(system, sinr::UniformPower(system));
      volatile double sink =
          dynamics::RunQueueSimulation(kernel, config, rng).throughput;
      (void)sink;
    });
    // Warm-kernel view: the kernel prebuilt outside the timer, as a batch
    // worker sees it (the instance kernel already exists for every task).
    const sinr::KernelCache warm_kernel(system, sinr::UniformPower(system));
    const double warm_ms = best_of(phase_prefix + "_warm", [&] {
      geom::Rng rng(kSeed + 7);
      volatile double sink =
          dynamics::RunQueueSimulation(warm_kernel, config, rng).throughput;
      (void)sink;
    });
    if (qc.scheduler == dynamics::Scheduler::kLongestQueueFirst) {
      lqf_naive_ms = naive_ms;
      lqf_cached_ms = cached_ms;
    }
    table.AddRow({qc.label, bench::Fmt(naive_ms, 1), bench::Fmt(cached_ms, 1),
                  bench::Fmt(warm_ms, 1),
                  bench::Fmt(naive_ms / cached_ms, 2) + "x"});
  }

  {
    distributed::RegretConfig config;
    config.rounds = rounds;
    config.measure_tail = std::max(1, rounds / 4);

    distributed::RegretResult naive_res, cached_res;
    {
      geom::Rng rng(kSeed + 13);
      naive_res = distributed::RunRegretGameNaive(system, config, rng);
    }
    {
      geom::Rng rng(kSeed + 13);
      const sinr::KernelCache kernel(system, sinr::UniformPower(system));
      cached_res = distributed::RunRegretGame(kernel, config, rng);
    }
    if (!(naive_res == cached_res)) {
      std::printf("ERROR: regret: cached results differ from the naive "
                  "reference\n");
      return 1;
    }

    const double naive_ms = best_of("regret_naive", [&] {
      geom::Rng rng(kSeed + 13);
      volatile double sink =
          distributed::RunRegretGameNaive(system, config, rng)
              .average_successes;
      (void)sink;
    });
    const double cached_ms = best_of("regret_cached", [&] {
      geom::Rng rng(kSeed + 13);
      const sinr::KernelCache kernel(system, sinr::UniformPower(system));
      volatile double sink =
          distributed::RunRegretGame(kernel, config, rng).average_successes;
      (void)sink;
    });
    const sinr::KernelCache warm_kernel(system, sinr::UniformPower(system));
    const double warm_ms = best_of("regret_warm", [&] {
      geom::Rng rng(kSeed + 13);
      volatile double sink =
          distributed::RunRegretGame(warm_kernel, config, rng)
              .average_successes;
      (void)sink;
    });
    table.AddRow({"regret game", bench::Fmt(naive_ms, 1),
                  bench::Fmt(cached_ms, 1), bench::Fmt(warm_ms, 1),
                  bench::Fmt(naive_ms / cached_ms, 2) + "x"});

    // The LinkSystem entry point's size dispatch (kRegretKernelCrossover):
    // below the crossover it must route to the naive path, so a standalone
    // small game never pays an O(n^2) kernel build it cannot amortise.
    // Gate bits first, then that "auto" does not regress against naive at
    // this size (generous slack -- the two are the same code below the
    // crossover, so anything past noise means the dispatch broke).
    distributed::RegretResult auto_res;
    {
      geom::Rng rng(kSeed + 13);
      auto_res = distributed::RunRegretGame(system, config, rng);
    }
    if (!(auto_res == naive_res)) {
      std::printf("ERROR: regret: auto dispatch differs from the naive "
                  "reference\n");
      return 1;
    }
    const double auto_ms = best_of("regret_auto", [&] {
      geom::Rng rng(kSeed + 13);
      volatile double sink =
          distributed::RunRegretGame(system, config, rng).average_successes;
      (void)sink;
    });
    table.AddRow({"regret auto", bench::Fmt(auto_ms, 1), "-", "-",
                  bench::Fmt(naive_ms / auto_ms, 2) + "x"});
    if (links < distributed::kRegretKernelCrossover &&
        auto_ms > naive_ms * 1.3 + 0.2) {
      std::printf("ERROR: regret auto dispatch slower than naive below the "
                  "crossover (auto %.2f ms vs naive %.2f ms at n=%d)\n",
                  auto_ms, naive_ms, links);
      return 1;
    }
  }

  table.Print();
  std::printf(
      "\nall trajectories bit-identical between the naive and cached paths "
      "(cached timings include the per-run kernel build)\n");
  std::printf("LQF per-instance speedup: %sx\n",
              bench::Fmt(lqf_naive_ms / lqf_cached_ms, 2).c_str());
  return report.Close();
}
