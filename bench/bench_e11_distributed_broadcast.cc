// E11 -- Distributed local broadcast across spaces of different fading
// parameter (Sec. 3.2/3.3).
//
// The annulus argument makes randomized local broadcast work whenever
// gamma(r) is bounded: the expected affectance at a listener from
// constant-density transmitters is O(gamma).  We run the same protocol on
// free-space, walled and shadowed deployments and report rounds to
// completion next to the measured gamma of each space.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/fading.h"
#include "distributed/local_broadcast.h"
#include "env/propagation.h"
#include "geom/samplers.h"
#include "spaces/samplers.h"

using namespace decaylib;

namespace {

struct Row {
  const char* name;
  core::DecaySpace space;
};

}  // namespace

int main() {
  bench::Banner("E11", "Local broadcast vs the fading parameter",
                "rounds-to-completion tracks gamma of the space "
                "(annulus argument in action)");

  const int n = 24;
  geom::Rng placement(3);
  const auto pts = geom::SampleMinDistance(n, 20.0, 20.0, 1.5, placement);
  const auto nodes = env::PlaceIsotropic(pts);

  std::vector<Row> rows;
  {
    env::PropagationConfig config;
    config.alpha = 3.0;
    rows.push_back({"free space a=3",
                    env::BuildDecaySpace(env::Environment(), config, nodes)});
    env::Environment office = env::Environment::OfficeGrid(20.0, 20.0, 3, 3);
    rows.push_back({"office 3x3 a=3",
                    env::BuildDecaySpace(office, config, nodes)});
    env::PropagationConfig shadowed = config;
    shadowed.shadowing_sigma_db = 8.0;
    rows.push_back({"shadowed 8dB a=3",
                    env::BuildDecaySpace(env::Environment(), shadowed, nodes)});
    env::PropagationConfig slow = config;
    slow.alpha = 2.2;
    rows.push_back({"free space a=2.2",
                    env::BuildDecaySpace(env::Environment(), slow, nodes)});
  }

  bench::Table table({"space", "gamma(r) greedy", "mean degree", "rounds",
                      "transmissions", "completed"});
  for (const Row& row : rows) {
    // Neighborhood radius: decay reaching ~ the 4 nearest neighbours.
    // Use the median 4th-smallest decay per node.
    std::vector<double> fourth;
    for (int v = 0; v < row.space.size(); ++v) {
      std::vector<double> decays;
      for (int u = 0; u < row.space.size(); ++u) {
        if (u != v) decays.push_back(row.space(v, u));
      }
      std::sort(decays.begin(), decays.end());
      fourth.push_back(decays[3]);
    }
    std::sort(fourth.begin(), fourth.end());
    const double r = fourth[fourth.size() / 2];

    const double gamma = core::FadingParameter(row.space, r, /*exact=*/false);
    const distributed::RoundSimulator sim(row.space, {1.0, 2.0, 1e-12});
    double degree = 0.0;
    for (int v = 0; v < row.space.size(); ++v) {
      degree += static_cast<double>(sim.Neighborhood(v, r).size());
    }
    degree /= row.space.size();

    distributed::BroadcastConfig config;
    config.neighborhood_r = r;
    config.max_rounds = 200000;
    geom::Rng rng(17);
    const auto result = distributed::RunLocalBroadcast(sim, config, rng);
    table.AddRow({row.name, bench::Fmt(gamma, 2), bench::Fmt(degree, 1),
                  bench::FmtInt(result.rounds),
                  bench::FmtInt(result.transmissions),
                  result.completed ? "yes" : "NO"});
  }
  table.Print();

  std::printf(
      "\nExpected shape: every run completes; spaces with larger gamma "
      "(slow decay, heavy\nshadowing) need more rounds at comparable "
      "neighborhood degree -- the protocol's\ncost is governed by the "
      "fading parameter, not by geometry.\n");
  return 0;
}
