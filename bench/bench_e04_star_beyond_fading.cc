// E4 -- Beyond fading spaces: the star example of Sec. 3.4.
//
// The star with k far leaves at distance k^2 and one near leaf at distance r
// has unbounded doubling dimension (a single ball packs k+1 points at a
// fixed ratio), yet the fading value at the near leaf is ~ r/k -> 0: spaces
// outside the fading class can still support distributed algorithms at a
// fixed separation scale.
#include <cstdio>

#include "bench_util.h"
#include "core/dimensions.h"
#include "core/fading.h"
#include "spaces/constructions.h"

using namespace decaylib;

int main() {
  bench::Banner("E4", "The star space: bounded gamma, unbounded doubling",
                "total interference at x_{-1} is k/k^2 = 1/k (Sec. 3.4)");

  const double r = 2.0;
  bench::Table table({"k", "packing at ratio 2.5", "gamma_{x-1}(r) measured",
                      "paper prediction r*k/(r+k^2)", "interference sum",
                      "1/k"});
  for (const int k : {4, 8, 16, 32, 64, 128, 256}) {
    const core::DecaySpace space = spaces::StarSpace(k, r);
    // Packing witnessing unbounded doubling: ball around the center of
    // radius just above k^2, packed at ratio q = 2.5.
    const double radius = static_cast<double>(k) * k * (1.0 + 1e-9);
    const auto body = core::Ball(space, 0, radius * 1.0000001);
    const int packed =
        static_cast<int>(core::GreedyPacking(space, body, radius / 2.5).size());
    const core::FadingValue v = core::FadingValueExact(space, 1, r);
    const double predicted =
        r * k / (r + static_cast<double>(k) * static_cast<double>(k));
    table.AddRow({bench::FmtInt(k), bench::FmtInt(packed), bench::Fmt(v.gamma, 5),
                  bench::Fmt(predicted, 5), bench::Fmt(v.gamma / r, 5),
                  bench::Fmt(1.0 / k, 5)});
  }
  table.Print();

  std::printf(
      "\nExpected shape: packing size grows linearly in k (doubling "
      "dimension unbounded)\nwhile gamma matches r*k/(r+k^2) exactly and "
      "vanishes like r/k.\n");
  return 0;
}
