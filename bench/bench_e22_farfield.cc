// E22 -- scaling the kernel layer past dense O(n^2): tiled builds and
// certified far-field affectance aggregation.
//
// A/B of the three kernel tiers on constant-density planar deployments
// (docs/performance.md, "scaling past dense"):
//   (a) n ~ 1k: dense KernelCache built through the scalar reference path
//       vs the fused tiled path (bit-identical entries, asserted over every
//       matrix), the float32 variant behind its exactness gate, the
//       far-field kernel build, and the greedy admission workload dense vs
//       far-field (identical admitted sets, asserted);
//   (b) n ~ 4k: the headline speedups -- dense tiled build vs far-field
//       build, dense greedy vs certified far-field greedy;
//   (c) n ~ 16k: far-field only; the dense matrices would need ~8.6 GB
//       while the far-field kernel stays O(n + cells).
// Certified-decision hit rates (accepts/rejects decided by the pooled
// interval vs exact fallbacks) are read from the sinr.farfield_* obs
// counters and also land in the BENCH record's per-phase counter deltas.
//
// Flags: --n <links> (default 1024), --n-large <links> (default 4096),
//        --n-xl <links> (default 16384), --epsilon <eps> (default 1e-3),
//        plus the obs::BenchHarness flags --json (write BENCH_E22.json,
//        schema v2), --reps/--warmup/--min-time-ms (sampling control).
//
// Run in a Release build; the committed bench/baselines/BENCH_E22.json was
// recorded with the CI invocation (reduced n, see .github/workflows/ci.yml).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <vector>

#include "bench_util.h"
#include "capacity/baselines.h"
#include "core/decay_space.h"
#include "obs/bench_harness.h"
#include "obs/registry.h"
#include "sinr/farfield.h"
#include "sinr/kernel.h"
#include "sinr/power.h"

using namespace decaylib;

namespace {

constexpr double kAlpha = 3.0;
constexpr sinr::SinrConfig kConfig{1.0, 0.0};

long long CounterValue(const char* name) {
  return obs::Registry::Global().GetCounter(name).value();
}

// Snapshot of the far-field decision counters, for hit-rate deltas around a
// timed phase.
struct FarFieldCounters {
  long long checks = 0;
  long long accepts = 0;
  long long rejects = 0;
  long long fallbacks = 0;
  long long refined = 0;

  static FarFieldCounters Snapshot() {
    return {CounterValue("sinr.farfield_admission_checks"),
            CounterValue("sinr.farfield_certified_accepts"),
            CounterValue("sinr.farfield_certified_rejects"),
            CounterValue("sinr.farfield_exact_fallbacks"),
            CounterValue("sinr.farfield_refined_cells")};
  }
  FarFieldCounters Delta(const FarFieldCounters& before) const {
    return {checks - before.checks, accepts - before.accepts,
            rejects - before.rejects, fallbacks - before.fallbacks,
            refined - before.refined};
  }
};

// Every dense matrix entry bitwise-equal between two builds of the same
// system (the tiled/scalar contract).
bool BitIdenticalKernels(const sinr::KernelCache& a,
                         const sinr::KernelCache& b) {
  const int n = a.NumLinks();
  if (b.NumLinks() != n) return false;
  for (int w = 0; w < n; ++w) {
    for (int v = 0; v < n; ++v) {
      if (a.AffectanceRaw(w, v) != b.AffectanceRaw(w, v) ||
          a.CrossDecay(w, v) != b.CrossDecay(w, v) ||
          a.MinPairDecay(v, w) != b.MinPairDecay(v, w)) {
        return false;
      }
    }
  }
  return true;
}

void PrintHitRates(const char* tag, const FarFieldCounters& d) {
  const double denom = d.checks > 0 ? static_cast<double>(d.checks) : 1.0;
  std::printf(
      "%s: %lld certified checks (%.1f%% accept / %.1f%% reject via the "
      "pooled interval, %.1f%% exact fallbacks), %lld cells refined\n",
      tag, d.checks, 100.0 * static_cast<double>(d.accepts) / denom,
      100.0 * static_cast<double>(d.rejects) / denom,
      100.0 * static_cast<double>(d.fallbacks) / denom, d.refined);
}

}  // namespace

int main(int argc, char** argv) {
  int n_small = 1024;
  int n_large = 4096;
  int n_xl = 16384;
  double epsilon = 1e-3;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--n") == 0) n_small = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--n-large") == 0) {
      n_large = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--n-xl") == 0) n_xl = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--epsilon") == 0) {
      epsilon = std::atof(argv[i + 1]);
    }
  }
  obs::BenchHarness report("E22", argc, argv);
  if (n_small < 2 || n_large < 2 || n_xl < 2 ||
      !(epsilon >= 0.0 && std::isfinite(epsilon)) || !report.args_ok()) {
    std::fprintf(stderr,
                 "usage: %s [--n <links >= 2>] [--n-large <links >= 2>] "
                 "[--n-xl <links >= 2>] [--epsilon <eps >= 0>] [--json] "
                 "[--reps N] [--warmup N] [--min-time-ms T]\n",
                 argv[0]);
    return 2;
  }

  bench::Banner("E22", "Far-field kernel tier",
                "pooling distant cells' decay contributions with a "
                "certified relative error bound turns the O(n^2) kernel "
                "build and the admission loops into near-linear passes");

  const sinr::FarFieldConfig ff_config{epsilon, 8};

  // ---- (a) small tier: every path, every exactness assertion ----
  {
    std::printf("\n(a) n = %d: tiled vs scalar vs float32 vs far-field\n\n",
                n_small);
    geom::Rng rng(61);
    const double box = 4.0 * std::sqrt(static_cast<double>(n_small));
    bench::PlanarDeployment dep(n_small, box, 0.5, 1.5, rng);
    const core::DecaySpace space =
        core::DecaySpace::Geometric(dep.points, kAlpha);
    const sinr::LinkSystem system(space, dep.links, kConfig);

    sinr::KernelCache scalar(system, sinr::UniformPower(system),
                             sinr::KernelBuildPath::kScalar);
    const obs::SampleStats scalar_stats =
        report.Time("build_scalar_small", n_small, [&] {
          scalar = sinr::KernelCache(system, sinr::UniformPower(system),
                                     sinr::KernelBuildPath::kScalar);
        });

    sinr::KernelCache tiled(system, sinr::UniformPower(system));
    const obs::SampleStats tiled_stats =
        report.Time("build_tiled_small", n_small, [&] {
          tiled = sinr::KernelCache(system, sinr::UniformPower(system),
                                    sinr::KernelBuildPath::kTiled);
        });
    if (!BitIdenticalKernels(scalar, tiled)) {
      std::printf("ERROR: tiled kernel build diverged from the scalar "
                  "reference\n");
      return 1;
    }

    core::StatusOr<sinr::Float32Kernel> f32 =
        sinr::Float32Kernel::FromDouble(tiled, 1e-5);
    const obs::SampleStats f32_stats =
        report.Time("float32_gate_small", n_small, [&] {
          f32 = sinr::Float32Kernel::FromDouble(tiled, 1e-5);
        });
    if (!f32.ok()) {
      std::printf("ERROR: float32 gate rejected a well-conditioned "
                  "instance: %s\n",
                  f32.status().message().c_str());
      return 1;
    }
    std::vector<int> all(static_cast<std::size_t>(n_small));
    std::iota(all.begin(), all.end(), 0);
    for (int v = 0; v < n_small; v += n_small / 8 + 1) {
      double dbl = 0.0;
      for (int w : all) dbl += tiled.AffectanceRaw(w, v);
      const double flt = f32->InAffectanceRaw(all, v);
      if (std::abs(flt - dbl) > 1e-4 * std::max(1.0, std::abs(dbl))) {
        std::printf("ERROR: float32 aggregate drifted beyond the gate's "
                    "tolerance at v=%d\n", v);
        return 1;
      }
    }

    sinr::FarFieldKernel ff(dep.points, dep.links, kAlpha, kConfig,
                            sinr::UniformPower(system), ff_config);
    const obs::SampleStats ff_stats =
        report.Time("farfield_build_small", n_small, [&] {
          ff = sinr::FarFieldKernel(dep.points, dep.links, kAlpha, kConfig,
                                    sinr::UniformPower(system), ff_config);
        });

    std::vector<int> dense_greedy;
    const obs::SampleStats gd_stats =
        report.Time("greedy_dense_small", n_small,
                    [&] { dense_greedy = capacity::GreedyFeasible(tiled, all); });
    std::vector<int> ff_greedy;
    const FarFieldCounters before = FarFieldCounters::Snapshot();
    const obs::SampleStats gf_stats =
        report.Time("greedy_farfield_small", n_small,
                    [&] { ff_greedy = sinr::FarFieldGreedyFeasible(ff, all); });
    const FarFieldCounters delta = FarFieldCounters::Snapshot().Delta(before);
    if (ff_greedy != dense_greedy) {
      std::printf("ERROR: certified far-field greedy diverged from the "
                  "dense admitted set\n");
      return 1;
    }

    bench::Table table({"path", "wall ms", "speedup vs scalar", "memory MB"});
    const double mb = 1.0 / (1024.0 * 1024.0);
    table.AddRow({"dense build (scalar)", bench::Fmt(scalar_stats.min_ms, 2),
                  "1.00",
                  bench::Fmt(static_cast<double>(tiled.MemoryBytes()) * mb, 1)});
    table.AddRow({"dense build (tiled)", bench::Fmt(tiled_stats.min_ms, 2),
                  bench::Fmt(scalar_stats.min_ms / tiled_stats.min_ms, 2),
                  bench::Fmt(static_cast<double>(tiled.MemoryBytes()) * mb, 1)});
    table.AddRow({"float32 gate + convert", bench::Fmt(f32_stats.min_ms, 2), "",
                  bench::Fmt(static_cast<double>(f32->MemoryBytes()) * mb, 1)});
    table.AddRow({"far-field build", bench::Fmt(ff_stats.min_ms, 2),
                  bench::Fmt(scalar_stats.min_ms / ff_stats.min_ms, 2),
                  bench::Fmt(static_cast<double>(ff.MemoryBytes()) * mb, 1)});
    table.Print();
    std::printf("greedy: dense %s ms, far-field %s ms (|S| = %zu, "
                "identical sets), float32 max rel err %.2e\n",
                bench::Fmt(gd_stats.min_ms, 2).c_str(),
                bench::Fmt(gf_stats.min_ms, 2).c_str(), dense_greedy.size(),
                f32->MaxRelativeError());
    PrintHitRates("hit rates", delta);
  }

  // ---- (b) large tier: the headline dense-vs-far-field speedups ----
  {
    std::printf("\n(b) n = %d: dense vs certified far-field (epsilon = %g)\n\n",
                n_large, epsilon);
    geom::Rng rng(62);
    const double box = 4.0 * std::sqrt(static_cast<double>(n_large));
    bench::PlanarDeployment dep(n_large, box, 0.5, 1.5, rng);
    const core::DecaySpace space =
        core::DecaySpace::Geometric(dep.points, kAlpha);
    const sinr::LinkSystem system(space, dep.links, kConfig);

    sinr::KernelCache dense(system, sinr::UniformPower(system));
    const obs::SampleStats dense_stats =
        report.Time("build_tiled_large", n_large, [&] {
          dense = sinr::KernelCache(system, sinr::UniformPower(system),
                                    sinr::KernelBuildPath::kTiled);
        });

    sinr::FarFieldKernel ff(dep.points, dep.links, kAlpha, kConfig,
                            sinr::UniformPower(system), ff_config);
    const obs::SampleStats ff_stats =
        report.Time("farfield_build_large", n_large, [&] {
          ff = sinr::FarFieldKernel(dep.points, dep.links, kAlpha, kConfig,
                                    sinr::UniformPower(system), ff_config);
        });

    std::vector<int> all(static_cast<std::size_t>(n_large));
    std::iota(all.begin(), all.end(), 0);
    std::vector<int> dense_greedy;
    const obs::SampleStats gd_stats =
        report.Time("greedy_dense_large", n_large,
                    [&] { dense_greedy = capacity::GreedyFeasible(dense, all); });
    std::vector<int> ff_greedy;
    const FarFieldCounters before = FarFieldCounters::Snapshot();
    const obs::SampleStats gf_stats =
        report.Time("greedy_farfield_large", n_large,
                    [&] { ff_greedy = sinr::FarFieldGreedyFeasible(ff, all); });
    const FarFieldCounters delta = FarFieldCounters::Snapshot().Delta(before);
    if (ff_greedy != dense_greedy) {
      std::printf("ERROR: certified far-field greedy diverged from the "
                  "dense admitted set at n = %d\n", n_large);
      return 1;
    }

    const double mb = 1.0 / (1024.0 * 1024.0);
    bench::Table table({"stage", "dense ms", "far-field ms", "speedup"});
    table.AddRow({"kernel build", bench::Fmt(dense_stats.min_ms, 2),
                  bench::Fmt(ff_stats.min_ms, 2),
                  bench::Fmt(dense_stats.min_ms / ff_stats.min_ms, 1)});
    table.AddRow({"greedy admission", bench::Fmt(gd_stats.min_ms, 2),
                  bench::Fmt(gf_stats.min_ms, 2),
                  bench::Fmt(gd_stats.min_ms / gf_stats.min_ms, 1)});
    // The acceptance headline: an admission-heavy workload pays build +
    // admission on both sides (the dense matrix is useless until built).
    const double dense_e2e = dense_stats.min_ms + gd_stats.min_ms;
    const double ff_e2e = ff_stats.min_ms + gf_stats.min_ms;
    table.AddRow({"build + admission", bench::Fmt(dense_e2e, 2),
                  bench::Fmt(ff_e2e, 2), bench::Fmt(dense_e2e / ff_e2e, 1)});
    table.Print();
    std::printf("|S| = %zu (identical sets); memory: dense %s MB, "
                "far-field %s MB\n",
                dense_greedy.size(),
                bench::Fmt(static_cast<double>(dense.MemoryBytes()) * mb, 1).c_str(),
                bench::Fmt(static_cast<double>(ff.MemoryBytes()) * mb, 1).c_str());
    PrintHitRates("hit rates", delta);
  }

  // ---- (c) xl tier: past the dense wall ----
  {
    std::printf("\n(c) n = %d: far-field only (dense matrices would need "
                "%.1f GB)\n\n",
                n_xl,
                4.0 * 8.0 * static_cast<double>(n_xl) *
                    static_cast<double>(n_xl) / (1024.0 * 1024.0 * 1024.0));
    geom::Rng rng(63);
    const double box = 4.0 * std::sqrt(static_cast<double>(n_xl));
    bench::PlanarDeployment dep(n_xl, box, 0.5, 1.5, rng);
    const sinr::PowerAssignment uniform(static_cast<std::size_t>(n_xl), 1.0);

    sinr::FarFieldKernel ff(dep.points, dep.links, kAlpha, kConfig, uniform,
                            ff_config);
    const obs::SampleStats ff_stats =
        report.Time("farfield_build_xl", n_xl, [&] {
          ff = sinr::FarFieldKernel(dep.points, dep.links, kAlpha, kConfig,
                                    uniform, ff_config);
        });

    std::vector<int> ff_greedy;
    const FarFieldCounters before = FarFieldCounters::Snapshot();
    const obs::SampleStats gf_stats =
        report.Time("greedy_farfield_xl", n_xl,
                    [&] { ff_greedy = sinr::FarFieldGreedyFeasible(ff); });
    const FarFieldCounters delta = FarFieldCounters::Snapshot().Delta(before);

    std::printf("far-field build %s ms, greedy %s ms, |S| = %zu, kernel "
                "memory %.1f MB\n",
                bench::Fmt(ff_stats.min_ms, 2).c_str(),
                bench::Fmt(gf_stats.min_ms, 2).c_str(), ff_greedy.size(),
                static_cast<double>(ff.MemoryBytes()) / (1024.0 * 1024.0));
    PrintHitRates("hit rates", delta);
  }

  std::printf(
      "\nExpected shape: the build + admission row clears 5x over dense at "
      "n ~ 4k (growing\nwith n), with certified decisions deciding almost "
      "every check and exact fallbacks\nrare; tier (c) runs where the dense "
      "kernel cannot allocate.\n");
  return report.Close();
}
