// E16 -- Rayleigh fading vs thresholding (Sec. 2.1's [10] reduction).
//
// On feasible sets from the thresholding model, every link keeps a constant
// Rayleigh success probability (>= e^{-a_S(v)}), and the closed form matches
// Monte Carlo; so algorithms built for the thresholding model (everything in
// this library) carry over to the randomized-filter model at constant
// factors -- on decay spaces exactly as in GEO-SINR.
#include <cstdio>

#include "bench_util.h"
#include "capacity/baselines.h"
#include "sinr/power.h"
#include "sinr/rayleigh.h"
#include "spaces/samplers.h"

using namespace decaylib;

int main() {
  bench::Banner("E16", "Rayleigh fading over decay spaces",
                "thresholding-feasible sets keep constant success "
                "probability under Rayleigh ([10])");

  bench::Table table({"space", "|S|", "min P[success]", "mean P[success]",
                      "min lower bound", "MC agreement"});
  struct Case {
    const char* name;
    double alpha;
    double sigma_db;
  };
  for (const Case c : {Case{"geometric a=3", 3.0, 0.0},
                       Case{"shadowed a=3 s=6", 3.0, 6.0},
                       Case{"shadowed a=3 s=10", 3.0, 10.0}}) {
    geom::Rng rng(7);
    bench::PlanarDeployment dep(18, 20.0, 0.6, 1.2, rng);
    geom::Rng shadow(11);
    const core::DecaySpace space =
        c.sigma_db == 0.0
            ? core::DecaySpace::Geometric(dep.points, c.alpha)
            : spaces::ShadowedGeometric(dep.points, c.alpha, c.sigma_db,
                                        shadow, true);
    const sinr::LinkSystem system(space, dep.links, {2.0, 0.0});
    const auto power = sinr::UniformPower(system);
    const auto S = capacity::GreedyFeasible(system);
    double min_p = 1.0;
    double sum_p = 0.0;
    double min_lb = 1.0;
    double worst_gap = 0.0;
    geom::Rng mc(13);
    for (int v : S) {
      const double p = sinr::RayleighSuccessProbability(system, v, S, power);
      const double lb = sinr::RayleighSuccessLowerBound(system, v, S, power);
      const double sim =
          sinr::RayleighSuccessMonteCarlo(system, v, S, power, 20000, mc);
      min_p = std::min(min_p, p);
      min_lb = std::min(min_lb, lb);
      sum_p += p;
      worst_gap = std::max(worst_gap, std::abs(sim - p));
    }
    table.AddRow({c.name, bench::FmtInt(static_cast<long long>(S.size())),
                  bench::Fmt(min_p), bench::Fmt(sum_p / S.size()),
                  bench::Fmt(min_lb),
                  worst_gap < 0.02 ? "yes" : bench::Fmt(worst_gap)});
  }
  table.Print();

  std::printf(
      "\nExpected shape: min success probability stays above e^{-1} = "
      "0.368 on every space\n(feasibility gives a_S(v) <= 1), the closed "
      "form matches Monte Carlo to < 0.02, and\nthe e^{-a} lower bound "
      "under-estimates but tracks.\n");
  return 0;
}
