// E5 -- The Theorem 3 hardness construction (Appendix A).
//
// Graph G maps to equi-decay links with gains 2 (edge) / 1/n (non-edge):
//  * feasible sets <-> independent sets, under uniform power AND under
//    arbitrary power control (verified exactly for small n);
//  * zeta <= lg(decay spread) ~ lg n;
//  * the realised greedy-vs-OPT gap grows with n, the finite-size shadow of
//    the 2^{zeta(1-o(1))} inapproximability.
#include <cstdio>

#include "bench_util.h"
#include "capacity/baselines.h"
#include "capacity/exact.h"
#include "core/metricity.h"
#include "graph/generators.h"
#include "graph/independent_set.h"
#include "sinr/power.h"
#include "spaces/constructions.h"

using namespace decaylib;

int main() {
  bench::Banner("E5", "Theorem 3: capacity == MIS on the decay construction",
                "2^{zeta(1-o(1))}-inapproximability via MAX-IS, even with "
                "power control");

  {
    std::printf("\n(a) Exact correspondence on G(n, 1/2) (exact solvers)\n\n");
    bench::Table table({"n", "zeta", "lg(2n)", "MIS", "CAP uniform",
                        "CAP power-ctl", "match"});
    for (const int n : {8, 12, 16, 20}) {
      geom::Rng rng(static_cast<std::uint64_t>(n));
      const graph::Graph g = graph::RandomGnp(n, 0.5, rng);
      const auto instance = spaces::Theorem3Instance(g);
      const sinr::LinkSystem system(instance.space,
                                    sinr::LinksFromPairs(instance.links),
                                    {1.0, 0.0});
      const auto mis = graph::MaxIndependentSet(g);
      const auto cap = capacity::ExactCapacityUniform(system);
      const auto all = sinr::AllLinks(system);
      const auto pc = n <= 16
                          ? capacity::ExactCapacityPowerControl(system, all)
                          : cap;  // power-control solver is the slow one
      const double zeta = core::Metricity(instance.space);
      const bool match = cap.size() == mis.size() && pc.size() == mis.size();
      table.AddRow({bench::FmtInt(n), bench::Fmt(zeta),
                    bench::Fmt(std::log2(2.0 * n)),
                    bench::FmtInt(static_cast<long long>(mis.size())),
                    bench::FmtInt(static_cast<long long>(cap.size())),
                    bench::FmtInt(static_cast<long long>(pc.size())),
                    match ? "yes" : "NO"});
    }
    table.Print();
  }

  {
    std::printf(
        "\n(b) Realised approximation gap: greedy MIS vs exact, lifted "
        "through the construction\n    (worst over 10 G(n, p) draws per "
        "row)\n\n");
    bench::Table table({"n", "p", "zeta", "worst OPT/greedy"});
    for (const int n : {12, 16, 20}) {
      for (const double p : {0.3, 0.6}) {
        double worst = 1.0;
        double zeta = 0.0;
        for (std::uint64_t seed = 1; seed <= 10; ++seed) {
          geom::Rng rng(seed * 1000 + n);
          const graph::Graph g = graph::RandomGnp(n, p, rng);
          const auto instance = spaces::Theorem3Instance(g);
          const sinr::LinkSystem system(instance.space,
                                        sinr::LinksFromPairs(instance.links),
                                        {1.0, 0.0});
          const auto opt = capacity::ExactCapacityUniform(system);
          const auto greedy = capacity::GreedyFeasible(system);
          worst = std::max(worst, static_cast<double>(opt.size()) /
                                      std::max<std::size_t>(1, greedy.size()));
          zeta = core::Metricity(instance.space);
        }
        table.AddRow({bench::FmtInt(n), bench::Fmt(p, 1), bench::Fmt(zeta),
                      bench::Fmt(worst)});
      }
    }
    table.Print();
  }

  std::printf(
      "\nExpected shape: capacity equals MIS on every instance (both power "
      "regimes); zeta\ntracks lg(2n); worst-case gaps grow with n -- "
      "the hardness is structural, not an\nartefact of the solver.\n");
  return 0;
}
