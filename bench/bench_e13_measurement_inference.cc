// E13 -- Populating decay spaces from measurements (Sec. 2.2).
//
// Decay matrices "are relatively easily obtained by measurements ... can
// also be inferred by packet reception rates".  We simulate both pipelines
// over walled/shadowed ground truth and check how faithfully the inferred
// matrix reproduces the space's key statistics (zeta, phi, spread) and the
// downstream capacity decisions.
#include <cstdio>

#include "bench_util.h"
#include "capacity/algorithm1.h"
#include "core/metricity.h"
#include "env/propagation.h"
#include "geom/samplers.h"
#include "measurement/prr.h"
#include "measurement/rssi.h"
#include "sinr/power.h"

using namespace decaylib;

int main() {
  bench::Banner("E13", "Decay inference from RSSI / PRR measurements",
                "measured matrices reproduce zeta and downstream decisions "
                "(Sec. 2.2)");

  // Ground truth: office environment with shadowing.
  geom::Rng rng(5);
  bench::PlanarDeployment dep(14, 24.0, 0.8, 1.2, rng);
  env::Environment office = env::Environment::OfficeGrid(24.0, 24.0, 3, 3);
  env::PropagationConfig config;
  config.alpha = 2.8;
  config.shadowing_sigma_db = 4.0;
  const core::DecaySpace truth =
      env::BuildDecaySpace(office, config, env::PlaceIsotropic(dep.points));
  const double zeta_truth = core::Metricity(truth);
  const sinr::LinkSystem truth_system(truth, dep.links, {1.0, 0.0});
  const auto chosen_truth =
      capacity::RunAlgorithm1(truth_system, std::max(1.0, zeta_truth))
          .selected;

  std::printf("\nGround truth: zeta = %.3f, capacity choice |S| = %zu\n",
              zeta_truth, chosen_truth.size());

  {
    std::printf("\n(a) RSSI pipeline across quantisation\n\n");
    bench::Table table({"quant dB", "noise dB", "zeta inferred",
                        "zeta error %", "same capacity set",
                        "choice feasible on truth"});
    for (const double quant : {0.0, 0.5, 1.0, 2.0, 4.0}) {
      measurement::RssiConfig rssi;
      rssi.quantization_db = quant;
      rssi.noise_sigma_db = quant > 0.0 ? 0.5 : 0.0;
      rssi.readings_per_pair = 16;
      rssi.sensitivity_dbm = -1000.0;
      geom::Rng mrng(7);
      const auto table_rssi = measurement::SimulateRssi(truth, rssi, mrng);
      const core::DecaySpace inferred =
          measurement::InferDecayFromRssi(table_rssi, rssi);
      const double zeta = core::Metricity(inferred);
      const sinr::LinkSystem system(inferred, dep.links, {1.0, 0.0});
      const auto chosen =
          capacity::RunAlgorithm1(system, std::max(1.0, zeta)).selected;
      const bool feasible_on_truth = truth_system.IsFeasible(
          chosen, sinr::UniformPower(truth_system));
      table.AddRow({bench::Fmt(quant, 1), bench::Fmt(rssi.noise_sigma_db, 1),
                    bench::Fmt(zeta),
                    bench::Fmt(100.0 * std::abs(zeta - zeta_truth) /
                               zeta_truth, 1),
                    chosen == chosen_truth ? "yes" : "no",
                    feasible_on_truth ? "yes" : "NO"});
    }
    table.Print();
  }

  {
    std::printf("\n(b) PRR pipeline across probe counts (noise tuned so "
                "SINRs sit near threshold)\n\n");
    bench::Table table({"probes", "mean |log decay err|", "zeta inferred"});
    for (const int probes : {50, 200, 1000, 5000}) {
      measurement::PrrConfig prr;
      prr.probes = probes;
      // Put the capture transition in the informative range for this truth.
      prr.noise = 1.0 / (prr.capture.beta * truth.MaxDecay());
      geom::Rng prng(9);
      const auto rates = measurement::SimulatePrr(truth, prr, prng);
      const core::DecaySpace inferred =
          measurement::InferDecayFromPrr(rates, prr);
      double err = 0.0;
      int count = 0;
      for (int u = 0; u < truth.size(); ++u) {
        for (int v = 0; v < truth.size(); ++v) {
          if (u == v) continue;
          err += std::abs(std::log(inferred(u, v) / truth(u, v)));
          ++count;
        }
      }
      table.AddRow({bench::FmtInt(probes), bench::Fmt(err / count),
                    bench::Fmt(core::Metricity(inferred))});
    }
    table.Print();
  }

  std::printf(
      "\nExpected shape: (a) zeta error grows with quantisation but the "
      "capacity choice stays\nfeasible on the true matrix throughout; (b) "
      "PRR inference sharpens with probe count\n(saturated links cap the "
      "achievable accuracy).\n");
  return 0;
}
