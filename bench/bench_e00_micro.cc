// E0 -- micro-kernel timings with google-benchmark.
//
// Times the hot kernels of the library: metricity computation, affectance
// matrix evaluation, Algorithm 1, greedy capacity, fading-parameter
// estimation and decay-matrix generation.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "capacity/algorithm1.h"
#include "capacity/baselines.h"
#include "core/fading.h"
#include "core/metricity.h"
#include "env/propagation.h"
#include "geom/samplers.h"
#include "sinr/kernel.h"
#include "sinr/power.h"

using namespace decaylib;

namespace {

core::DecaySpace MakeSpace(int n) {
  geom::Rng rng(1);
  const auto pts = geom::SampleUniform(n, 20.0, 20.0, rng);
  return core::DecaySpace::Geometric(pts, 3.0);
}

void BM_Metricity(benchmark::State& state) {
  const core::DecaySpace space = MakeSpace(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Metricity(space));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Metricity)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_MetricityNaive(benchmark::State& state) {
  const core::DecaySpace space = MakeSpace(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputeMetricityNaive(space));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MetricityNaive)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_Phi(benchmark::State& state) {
  const core::DecaySpace space = MakeSpace(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputePhi(space));
  }
}
BENCHMARK(BM_Phi)->Arg(16)->Arg(32)->Arg(64);

void BM_AffectanceMatrix(benchmark::State& state) {
  const int links = static_cast<int>(state.range(0));
  geom::Rng rng(2);
  bench::PlanarDeployment dep(links, 25.0, 0.5, 1.5, rng);
  const core::DecaySpace space = core::DecaySpace::Geometric(dep.points, 3.0);
  const sinr::LinkSystem system(space, dep.links, {1.0, 0.0});
  const auto power = sinr::UniformPower(system);
  for (auto _ : state) {
    double total = 0.0;
    for (int v = 0; v < links; ++v) {
      for (int w = 0; w < links; ++w) {
        total += system.Affectance(w, v, power);
      }
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_AffectanceMatrix)->Arg(32)->Arg(64)->Arg(128);

void BM_Algorithm1(benchmark::State& state) {
  const int links = static_cast<int>(state.range(0));
  geom::Rng rng(3);
  bench::PlanarDeployment dep(links, 30.0, 0.5, 1.5, rng);
  const core::DecaySpace space = core::DecaySpace::Geometric(dep.points, 3.0);
  const sinr::LinkSystem system(space, dep.links, {1.0, 0.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(capacity::RunAlgorithm1(system, 3.0));
  }
}
BENCHMARK(BM_Algorithm1)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_Algorithm1Naive(benchmark::State& state) {
  const int links = static_cast<int>(state.range(0));
  geom::Rng rng(3);
  bench::PlanarDeployment dep(links, 30.0, 0.5, 1.5, rng);
  const core::DecaySpace space = core::DecaySpace::Geometric(dep.points, 3.0);
  const sinr::LinkSystem system(space, dep.links, {1.0, 0.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(capacity::RunAlgorithm1Naive(system, 3.0));
  }
}
BENCHMARK(BM_Algorithm1Naive)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_Algorithm1WarmKernel(benchmark::State& state) {
  const int links = static_cast<int>(state.range(0));
  geom::Rng rng(3);
  bench::PlanarDeployment dep(links, 30.0, 0.5, 1.5, rng);
  const core::DecaySpace space = core::DecaySpace::Geometric(dep.points, 3.0);
  const sinr::LinkSystem system(space, dep.links, {1.0, 0.0});
  const sinr::KernelCache kernel(system, sinr::UniformPower(system));
  for (auto _ : state) {
    benchmark::DoNotOptimize(capacity::RunAlgorithm1(kernel, 3.0));
  }
}
BENCHMARK(BM_Algorithm1WarmKernel)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_KernelCacheBuild(benchmark::State& state) {
  const int links = static_cast<int>(state.range(0));
  geom::Rng rng(6);
  bench::PlanarDeployment dep(links, 30.0, 0.5, 1.5, rng);
  const core::DecaySpace space = core::DecaySpace::Geometric(dep.points, 3.0);
  const sinr::LinkSystem system(space, dep.links, {1.0, 0.0});
  const auto power = sinr::UniformPower(system);
  for (auto _ : state) {
    sinr::KernelCache kernel(system, power);
    benchmark::DoNotOptimize(kernel.AffectanceRaw(0, 1));
  }
}
BENCHMARK(BM_KernelCacheBuild)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_AffectanceMatrixCached(benchmark::State& state) {
  const int links = static_cast<int>(state.range(0));
  geom::Rng rng(2);
  bench::PlanarDeployment dep(links, 25.0, 0.5, 1.5, rng);
  const core::DecaySpace space = core::DecaySpace::Geometric(dep.points, 3.0);
  const sinr::LinkSystem system(space, dep.links, {1.0, 0.0});
  const sinr::KernelCache kernel(system, sinr::UniformPower(system));
  for (auto _ : state) {
    double total = 0.0;
    for (int v = 0; v < links; ++v) {
      for (int w = 0; w < links; ++w) {
        total += kernel.Affectance(w, v);
      }
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_AffectanceMatrixCached)->Arg(32)->Arg(64)->Arg(128);

void BM_GreedyFeasible(benchmark::State& state) {
  const int links = static_cast<int>(state.range(0));
  geom::Rng rng(4);
  bench::PlanarDeployment dep(links, 30.0, 0.5, 1.5, rng);
  const core::DecaySpace space = core::DecaySpace::Geometric(dep.points, 3.0);
  const sinr::LinkSystem system(space, dep.links, {1.0, 0.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(capacity::GreedyFeasible(system));
  }
}
BENCHMARK(BM_GreedyFeasible)->Arg(32)->Arg(64)->Arg(128);

void BM_FadingParameterGreedy(benchmark::State& state) {
  const core::DecaySpace space = MakeSpace(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::FadingParameter(space, 8.0, false));
  }
}
BENCHMARK(BM_FadingParameterGreedy)->Arg(16)->Arg(32)->Arg(64);

void BM_BuildDecaySpaceOffice(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  geom::Rng rng(5);
  const auto nodes =
      env::PlaceIsotropic(geom::SampleUniform(n, 24.0, 24.0, rng));
  env::Environment office = env::Environment::OfficeGrid(24.0, 24.0, 3, 3);
  env::PropagationConfig config;
  config.alpha = 2.8;
  config.shadowing_sigma_db = 4.0;
  config.enable_reflections = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env::BuildDecaySpace(office, config, nodes));
  }
}
BENCHMARK(BM_BuildDecaySpaceOffice)->Arg(16)->Arg(32)->Arg(64);

}  // namespace
