// E17 -- Weighted capacity and spectrum auctions (transfer list [26, 43,
// 38, 37]).
//
// Weighted capacity heuristics vs exact maximum weight across alpha, and
// the truthful spectrum auction's welfare/revenue across environments: both
// families are parameterised by metric properties only (rho, zeta) and so
// carry over to decay spaces unchanged.
#include <cstdio>

#include "auction/auction.h"
#include "bench_util.h"
#include "capacity/weighted.h"
#include "core/metricity.h"
#include "env/propagation.h"
#include "sinr/power.h"

using namespace decaylib;

int main() {
  bench::Banner("E17", "Weighted capacity + spectrum auctions",
                "weighted capacity & truthful auctions transfer with "
                "alpha -> zeta ([26, 43, 38, 37])");

  {
    std::printf("\n(a) Weighted capacity vs exact (14 links, mean of 5 "
                "seeds)\n\n");
    bench::Table table({"alpha", "OPT weight", "greedy", "w-alg1",
                        "OPT/greedy", "OPT/w-alg1"});
    for (const double alpha : {2.0, 3.0, 4.0, 6.0}) {
      double opt = 0.0;
      double greedy = 0.0;
      double alg1 = 0.0;
      const int trials = 5;
      for (std::uint64_t seed = 1; seed <= trials; ++seed) {
        geom::Rng rng(seed * 3);
        bench::PlanarDeployment dep(14, 12.0, 0.6, 1.4, rng);
        const core::DecaySpace space =
            core::DecaySpace::Geometric(dep.points, alpha);
        const sinr::LinkSystem system(space, dep.links, {1.0, 0.0});
        std::vector<double> weights;
        for (int i = 0; i < 14; ++i) weights.push_back(rng.Uniform(1.0, 10.0));
        const double zeta = std::max(1.0, core::Metricity(space));
        opt += capacity::ExactWeightedCapacity(system, weights).weight;
        greedy += capacity::WeightedGreedy(system, weights).weight;
        alg1 += capacity::WeightedAlgorithm1(system, weights, zeta).weight;
      }
      table.AddRow({bench::Fmt(alpha, 1), bench::Fmt(opt / trials, 1),
                    bench::Fmt(greedy / trials, 1),
                    bench::Fmt(alg1 / trials, 1),
                    bench::Fmt(opt / std::max(1.0, greedy), 2),
                    bench::Fmt(opt / std::max(1.0, alg1), 2)});
    }
    table.Print();
  }

  {
    std::printf("\n(b) Truthful auction across environments (12 bidders)\n\n");
    bench::Table table({"environment", "zeta", "winners", "welfare",
                        "revenue", "rev/welfare"});
    geom::Rng rng(9);
    bench::PlanarDeployment dep(12, 7.0, 0.8, 1.6, rng);  // dense: real competition
    std::vector<double> bids;
    for (int i = 0; i < 12; ++i) bids.push_back(rng.Uniform(1.0, 9.0));
    env::PropagationConfig config;
    config.alpha = 3.0;
    for (const int rooms : {0, 2, 4}) {
      env::Environment environment =
          rooms == 0 ? env::Environment()
                     : env::Environment::OfficeGrid(20.0, 20.0, rooms, rooms);
      const core::DecaySpace space = env::BuildDecaySpace(
          environment, config, env::PlaceIsotropic(dep.points));
      const sinr::LinkSystem system(space, dep.links, {2.0, 0.0});
      const auto result = auction::RunAuction(system, bids);
      char name[32];
      std::snprintf(name, sizeof(name),
                    rooms == 0 ? "free space" : "office %dx%d", rooms, rooms);
      table.AddRow({name, bench::Fmt(core::Metricity(space), 2),
                    bench::FmtInt(static_cast<long long>(
                        result.winners.size())),
                    bench::Fmt(result.social_welfare, 1),
                    bench::Fmt(result.revenue, 1),
                    bench::Fmt(result.revenue /
                               std::max(1e-9, result.social_welfare), 2)});
    }
    table.Print();
  }

  std::printf(
      "\nExpected shape: weighted OPT/heuristic ratios stay small constants "
      "across alpha;\nwalls (higher zeta) shrink the winner set; revenue "
      "stays below welfare (individual\nrationality) on every row.\n");
  return 0;
}
