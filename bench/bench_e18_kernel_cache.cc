// E18 -- cached SINR kernel layer: speedup over the naive query paths.
//
// Measures the precompute-once/reuse-everywhere kernel (sinr/kernel.h)
// against the naive LinkSystem/metricity reference paths on n ~ 512
// instances:
//   (a) RunAlgorithm1 (cached, incl. kernel build)  vs RunAlgorithm1Naive,
//       plus the warm-kernel variant that reuses a prebuilt cache the way
//       ScheduleLinks does across slots;
//   (b) full scheduling (ScheduleLinks = one kernel, many extractions);
//   (c) ComputeMetricity / ComputePhi (pruned + flattened + parallel) vs
//       the exhaustive naive scans.
// The cached/pruned results are asserted identical to the naive ones before
// any timing is reported.
//
// Flags: --n <links> (default 512), --metricity-n <nodes> (default 512),
//        plus the obs::BenchHarness flags --json (write BENCH_E18.json,
//        schema v2), --reps/--warmup/--min-time-ms (sampling control).
//
// Run in a Release build (-DCMAKE_BUILD_TYPE=Release): the Assert build's
// DL_CHECK instrumentation slows the naive path far beyond its honest cost.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util.h"
#include "capacity/algorithm1.h"
#include "core/metricity.h"
#include "obs/bench_harness.h"
#include "scheduling/scheduler.h"
#include "sinr/kernel.h"
#include "sinr/power.h"
#include "spaces/samplers.h"

using namespace decaylib;

namespace {

bool SameResult(const capacity::Algorithm1Result& a,
                const capacity::Algorithm1Result& b) {
  return a.admitted == b.admitted && a.selected == b.selected;
}

}  // namespace

int main(int argc, char** argv) {
  int n_links = 512;
  int n_metricity = 512;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--n") == 0) n_links = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--metricity-n") == 0) {
      n_metricity = std::atoi(argv[i + 1]);
    }
  }
  obs::BenchHarness report("E18", argc, argv);
  if (n_links < 2 || n_metricity < 3 || !report.args_ok()) {
    std::fprintf(stderr,
                 "usage: %s [--n <links >= 2>] [--metricity-n <nodes >= 3>] "
                 "[--json] [--reps N] [--warmup N] [--min-time-ms T]\n",
                 argv[0]);
    return 2;
  }

  bench::Banner("E18", "Cached SINR kernel layer",
                "precomputed affectance/distance kernels + incremental "
                "greedy + pruned metricity make the O(n^2)/O(n^3) scans "
                ">= 10x faster at n ~ 512");

  {
    std::printf("\n(a) Algorithm 1, %d links (alpha = 3, zeta = 3)\n\n", n_links);
    geom::Rng rng(21);
    // Box grows with sqrt(n): constant density, so the admitted set X grows
    // linearly and the admission loop is the dominant cost.
    const double box = 4.0 * std::sqrt(static_cast<double>(n_links));
    bench::PlanarDeployment dep(n_links, box, 0.5, 1.5, rng);
    const core::DecaySpace space = core::DecaySpace::Geometric(dep.points, 3.0);
    const sinr::LinkSystem system(space, dep.links, {1.0, 0.0});
    const double zeta = 3.0;

    capacity::Algorithm1Result naive;
    const obs::SampleStats naive_stats = report.Time(
        "alg1_naive", n_links,
        [&] { naive = capacity::RunAlgorithm1Naive(system, zeta); });

    capacity::Algorithm1Result cached;
    const obs::SampleStats cold_stats = report.Time(
        "alg1_cached_cold", n_links,
        [&] { cached = capacity::RunAlgorithm1(system, zeta); });

    const sinr::KernelCache kernel(system, sinr::UniformPower(system));
    capacity::Algorithm1Result warm;
    const obs::SampleStats warm_stats = report.Time(
        "alg1_cached_warm", n_links,
        [&] { warm = capacity::RunAlgorithm1(kernel, zeta); });

    if (!SameResult(naive, cached) || !SameResult(naive, warm)) {
      std::printf("ERROR: cached Algorithm 1 diverged from the naive path\n");
      return 1;
    }

    bench::Table table({"path", "wall ms", "speedup", "|X|", "|S|"});
    table.AddRow({"naive", bench::Fmt(naive_stats.min_ms, 2), "1.00",
                  bench::FmtInt(static_cast<long long>(naive.admitted.size())),
                  bench::FmtInt(static_cast<long long>(naive.selected.size()))});
    table.AddRow({"cached (cold)", bench::Fmt(cold_stats.min_ms, 2),
                  bench::Fmt(naive_stats.min_ms / cold_stats.min_ms, 2), "",
                  ""});
    table.AddRow({"cached (warm kernel)", bench::Fmt(warm_stats.min_ms, 2),
                  bench::Fmt(naive_stats.min_ms / warm_stats.min_ms, 2), "",
                  ""});
    table.Print();
  }

  {
    const int n_sched = n_links / 2;
    std::printf("\n(b) Full schedule, %d links (kernel reused across slots)\n\n",
                n_sched);
    geom::Rng rng(22);
    const double box = 2.0 * std::sqrt(static_cast<double>(n_sched));
    bench::PlanarDeployment dep(n_sched, box, 0.5, 1.5, rng);
    const core::DecaySpace space = core::DecaySpace::Geometric(dep.points, 3.0);
    const sinr::LinkSystem system(space, dep.links, {1.0, 0.0});

    scheduling::Schedule schedule;
    const obs::SampleStats sched_stats = report.Time(
        "schedule_alg1", n_sched, [&] {
          schedule = scheduling::ScheduleLinks(
              system, 3.0, scheduling::Extractor::kAlgorithm1);
        });
    std::printf("%zu slots in %s ms\n", schedule.slots.size(),
                bench::Fmt(sched_stats.min_ms, 2).c_str());
  }

  {
    std::printf("\n(c) Metricity / phi, %d nodes (alpha = 3)\n\n", n_metricity);
    geom::Rng rng(23);
    const core::DecaySpace space =
        spaces::RandomGeometric(n_metricity, 20.0, 20.0, 3.0, rng);

    core::MetricityResult naive;
    const obs::SampleStats naive_stats = report.Time(
        "metricity_naive", n_metricity,
        [&] { naive = core::ComputeMetricityNaive(space); });

    core::MetricityResult pruned;
    const obs::SampleStats pruned_stats = report.Time(
        "metricity_pruned", n_metricity,
        [&] { pruned = core::ComputeMetricity(space); });

    core::PhiResult naive_phi;
    const obs::SampleStats naive_phi_stats = report.Time(
        "phi_naive", n_metricity,
        [&] { naive_phi = core::ComputePhiNaive(space); });

    core::PhiResult fast_phi;
    const obs::SampleStats fast_phi_stats = report.Time(
        "phi_optimised", n_metricity,
        [&] { fast_phi = core::ComputePhi(space); });

    if (pruned.zeta != naive.zeta ||
        fast_phi.phi_factor != naive_phi.phi_factor) {
      std::printf("ERROR: pruned metricity diverged from the naive path\n");
      return 1;
    }

    bench::Table table({"kernel", "naive ms", "optimised ms", "speedup"});
    table.AddRow({"ComputeMetricity", bench::Fmt(naive_stats.min_ms, 1),
                  bench::Fmt(pruned_stats.min_ms, 1),
                  bench::Fmt(naive_stats.min_ms / pruned_stats.min_ms, 1)});
    table.AddRow({"ComputePhi", bench::Fmt(naive_phi_stats.min_ms, 1),
                  bench::Fmt(fast_phi_stats.min_ms, 1),
                  bench::Fmt(naive_phi_stats.min_ms / fast_phi_stats.min_ms,
                             1)});
    table.Print();
    std::printf("zeta = %s (witness %d,%d,%d), phi = %s\n",
                bench::Fmt(pruned.zeta).c_str(), pruned.arg_x, pruned.arg_y,
                pruned.arg_z, bench::Fmt(fast_phi.phi).c_str());
  }

  std::printf(
      "\nExpected shape: >= 10x for Algorithm 1 and ComputeMetricity at "
      "n ~ 512; the warm-kernel\nrow shows the amortised cost the scheduler "
      "actually pays per extraction.\n");
  return report.Close();
}
