// E8 -- Algorithm 1 vs baselines (Theorem 5).
//
// Uniform-power CAPACITY in bounded-growth decay spaces is zeta^{O(1)}-
// approximable; on the plane, O(alpha^4) -- the first capacity bound
// sub-exponential in alpha.  We sweep alpha on planar deployments:
//  (a) small n with exact OPT: realised ratios for Algorithm 1, the
//      separation-free variant, and the general-metric greedy;
//  (b) larger n: absolute capacities, showing Algorithm 1 stays within a
//      flat factor of greedy while carrying its polynomial guarantee.
#include <cstdio>

#include "bench_util.h"
#include "capacity/algorithm1.h"
#include "capacity/baselines.h"
#include "capacity/exact.h"
#include "obs/bench_harness.h"
#include "sinr/power.h"

using namespace decaylib;

int main(int argc, char** argv) {
  obs::BenchHarness report("E08", argc, argv);
  if (!report.args_ok()) return 2;
  bench::Banner("E8", "Algorithm 1 capacity approximation (Theorem 5)",
                "zeta^{O(1)} approximation; O(alpha^4) on the plane, "
                "sub-exponential in alpha");

  {
    bench::WallTimer timer;
    std::printf("\n(a) vs exact OPT, 16 links, mean over 8 seeds\n\n");
    bench::Table table({"alpha", "OPT", "alg1", "half-aff", "greedy",
                        "OPT/alg1", "alpha^4 (ref)", "3^alpha (ref)"});
    for (const double alpha : {1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0}) {
      double opt_acc = 0.0;
      double alg1_acc = 0.0;
      double half_acc = 0.0;
      double greedy_acc = 0.0;
      const int trials = 8;
      for (std::uint64_t seed = 1; seed <= trials; ++seed) {
        geom::Rng rng(seed);
        bench::PlanarDeployment dep(16, 12.0, 0.6, 1.4, rng);
        const core::DecaySpace space =
            core::DecaySpace::Geometric(dep.points, alpha);
        const sinr::LinkSystem system(space, dep.links, {1.0, 0.0});
        opt_acc += static_cast<double>(
            capacity::ExactCapacityUniform(system).size());
        alg1_acc += static_cast<double>(
            capacity::RunAlgorithm1(system, alpha).selected.size());
        half_acc += static_cast<double>(
            capacity::GreedyHalfAffectance(system).size());
        greedy_acc += static_cast<double>(
            capacity::GreedyFeasible(system).size());
      }
      table.AddRow(
          {bench::Fmt(alpha, 1), bench::Fmt(opt_acc / trials, 2),
           bench::Fmt(alg1_acc / trials, 2), bench::Fmt(half_acc / trials, 2),
           bench::Fmt(greedy_acc / trials, 2),
           bench::Fmt(opt_acc / std::max(1.0, alg1_acc), 2),
           bench::Fmt(std::pow(alpha, 4.0), 0),
           bench::Fmt(std::pow(3.0, alpha), 0)});
    }
    table.Print();
    report.Record("vs_exact_opt", 16, timer.ElapsedMs());
  }

  {
    bench::WallTimer timer;
    std::printf("\n(b) larger deployments (120 links, no exact OPT)\n\n");
    bench::Table table({"alpha", "alg1", "half-aff", "greedy",
                        "greedy/alg1"});
    for (const double alpha : {2.0, 3.0, 4.0, 6.0}) {
      geom::Rng rng(static_cast<std::uint64_t>(alpha * 13));
      bench::PlanarDeployment dep(120, 35.0, 0.5, 1.5, rng);
      const core::DecaySpace space =
          core::DecaySpace::Geometric(dep.points, alpha);
      const sinr::LinkSystem system(space, dep.links, {1.0, 0.0});
      const auto alg1 = capacity::RunAlgorithm1(system, alpha).selected;
      const auto half = capacity::GreedyHalfAffectance(system);
      const auto greedy = capacity::GreedyFeasible(system);
      table.AddRow({bench::Fmt(alpha, 1),
                    bench::FmtInt(static_cast<long long>(alg1.size())),
                    bench::FmtInt(static_cast<long long>(half.size())),
                    bench::FmtInt(static_cast<long long>(greedy.size())),
                    bench::Fmt(static_cast<double>(greedy.size()) /
                               std::max<std::size_t>(1, alg1.size()), 2)});
    }
    table.Print();
    report.Record("large_deployments", 120, timer.ElapsedMs());
  }

  std::printf(
      "\nExpected shape: OPT/alg1 stays flat (within small constants) "
      "across alpha -- the\npolynomial guarantee -- and far below the "
      "exponential 3^alpha reference that general-\nmetric analyses "
      "predict; the separation test costs little vs the half-affectance "
      "variant.\n");
  return report.Close();
}
