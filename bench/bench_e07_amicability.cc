// E7 -- Amicability of bounded-growth decay spaces (Theorem 4).
//
// Every feasible set S contains S' with |S'| >= c|S|/h(zeta) and
// a_v(S') <= (1 + 2e^2) D for every link v.  We build the Theorem 4 witness
// on planar deployments across alpha, reporting the realised shrink factor
// h and the out-affectance constant, plus the regret-game throughput that
// amicability underwrites ([1]-style no-regret capacity).
#include <cstdio>

#include "bench_util.h"
#include "capacity/amicability.h"
#include "capacity/baselines.h"
#include "core/dimensions.h"
#include "core/metricity.h"
#include "distributed/regret_game.h"
#include "sinr/power.h"

using namespace decaylib;

int main() {
  bench::Banner("E7", "Amicability witness (Theorem 4)",
                "bounded-growth spaces are O(D zeta^{2A'})-amicable; "
                "(1+2e^2)D out-affectance");

  {
    std::printf("\n(a) Witness constants across alpha (40 links, mean of 3 "
                "seeds)\n\n");
    bench::Table table({"alpha", "zeta", "|S|", "|S'|", "shrink h",
                        "max a_v(S')", "indep dim D"});
    for (const double alpha : {2.0, 3.0, 4.0, 6.0}) {
      double zeta_acc = 0.0;
      double s_acc = 0.0;
      double sp_acc = 0.0;
      double shrink_acc = 0.0;
      double out_acc = 0.0;
      int dim = 0;
      const int trials = 3;
      for (std::uint64_t seed = 1; seed <= trials; ++seed) {
        geom::Rng rng(seed * 7 + static_cast<std::uint64_t>(alpha));
        bench::PlanarDeployment dep(40, 22.0, 0.5, 1.2, rng);
        const core::DecaySpace space =
            core::DecaySpace::Geometric(dep.points, alpha);
        const double zeta = std::max(1.0, core::Metricity(space));
        const sinr::LinkSystem system(space, dep.links, {1.0, 0.0});
        const auto S = capacity::GreedyFeasible(system);
        const auto witness =
            capacity::BuildAmicabilityWitness(system, S, zeta);
        zeta_acc += zeta;
        s_acc += static_cast<double>(S.size());
        sp_acc += static_cast<double>(witness.s_prime.size());
        shrink_acc += witness.shrink_factor;
        out_acc += witness.max_out_affectance;
        if (seed == 1) {
          // Independence dimension of the *sender* positions (<= 5 in the
          // plane); restrict to senders for tractability.
          std::vector<int> senders;
          for (const auto& link : dep.links) senders.push_back(link.sender);
          dim = core::IndependenceDimension(space.Subspace(senders));
        }
      }
      table.AddRow({bench::Fmt(alpha, 1), bench::Fmt(zeta_acc / trials),
                    bench::Fmt(s_acc / trials, 1),
                    bench::Fmt(sp_acc / trials, 1),
                    bench::Fmt(shrink_acc / trials),
                    bench::Fmt(out_acc / trials), bench::FmtInt(dim)});
    }
    table.Print();
    std::printf("\n(1 + 2e^2) * 5 = %.1f is the planar Theorem 4 ceiling.\n",
                (1.0 + 2.0 * std::exp(2.0)) * 5.0);
  }

  {
    std::printf(
        "\n(b) What amicability buys: no-regret capacity game throughput vs "
        "centralized OPT-ish\n\n");
    bench::Table table({"alpha", "greedy capacity", "regret-game successes",
                        "ratio"});
    for (const double alpha : {2.5, 3.0, 4.0}) {
      geom::Rng rng(static_cast<std::uint64_t>(alpha * 100));
      bench::PlanarDeployment dep(24, 20.0, 0.5, 1.2, rng);
      const core::DecaySpace space =
          core::DecaySpace::Geometric(dep.points, alpha);
      const sinr::LinkSystem system(space, dep.links, {2.0, 0.0});
      const auto greedy = capacity::GreedyFeasible(system);
      distributed::RegretConfig config;
      config.rounds = 3000;
      config.measure_tail = 500;
      geom::Rng game_rng(9);
      const auto result =
          distributed::RunRegretGame(system, config, game_rng);
      table.AddRow({bench::Fmt(alpha, 1),
                    bench::FmtInt(static_cast<long long>(greedy.size())),
                    bench::Fmt(result.average_successes, 2),
                    bench::Fmt(result.average_successes /
                               std::max<std::size_t>(1, greedy.size()), 2)});
    }
    table.Print();
  }

  std::printf(
      "\nExpected shape: max out-affectance below the (1+2e^2)D ceiling "
      "with plenty of slack;\nshrink h grows polynomially (not "
      "exponentially) in zeta; the regret game sustains a\nconstant fraction "
      "of centralized capacity.\n");
  return 0;
}
