// E3 -- The annulus-argument bound on the fading parameter (Theorem 2).
//
// For decay spaces with Assouad dimension A < 1 (w.r.t. constant C),
//     gamma(r) <= C * 2^{A+1} * (zetahat(2 - A) - 1).
// We measure gamma(r) exactly (branch and bound over r-separated sender
// sets) on line and planar power-law spaces, estimate (A, C) from packings,
// and print measured vs. bound.
#include <cstdio>

#include "bench_util.h"
#include "core/dimensions.h"
#include "core/fading.h"
#include "core/numerics.h"
#include "geom/samplers.h"
#include "spaces/constructions.h"

using namespace decaylib;

namespace {

struct SpaceCase {
  const char* name;
  core::DecaySpace space;
  double nominal_A;  // the analytic Assouad dimension
};

void RunCase(const SpaceCase& c, bench::Table& table) {
  const std::vector<double> qs{4.0, 8.0, 16.0, 32.0};
  const core::AssouadEstimate est =
      core::EstimateAssouadDimension(c.space, qs);
  // Fit the packing constant C as max over the sweep of g(q) / q^A with the
  // *analytic* A (a witness (C, A) pair for the packing inequality).
  double C = 1.0;
  for (std::size_t i = 0; i < est.qs.size(); ++i) {
    C = std::max(C, est.g[i] / std::pow(est.qs[i], c.nominal_A));
  }
  for (const double r : {2.0, 4.0, 8.0, 16.0}) {
    const double gamma = core::FadingParameter(c.space, r, /*exact=*/true);
    const double bound = core::Theorem2Bound(C, c.nominal_A);
    table.AddRow({c.name, bench::Fmt(r, 0), bench::Fmt(c.nominal_A, 2),
                  bench::Fmt(est.dimension, 2), bench::Fmt(C, 2),
                  bench::Fmt(gamma), bench::Fmt(bound),
                  gamma <= bound ? "yes" : "NO"});
  }
}

}  // namespace

int main() {
  bench::Banner("E3", "Fading parameter vs the Theorem 2 bound",
                "gamma(r) <= C 2^{A+1} (zetahat(2-A) - 1) for A < 1");

  std::printf("\nRiemann zetahat sanity: zetahat(2) = %.6f (pi^2/6 = %.6f)\n",
              core::RiemannZeta(2.0), M_PI * M_PI / 6.0);

  bench::Table table({"space", "r", "A (analytic)", "A (estimated)", "C fit",
                      "gamma(r) measured", "Thm2 bound", "holds"});

  for (const double alpha : {1.5, 2.0, 3.0, 4.0, 6.0}) {
    char name[64];
    std::snprintf(name, sizeof(name), "line a=%.1f", alpha);
    RunCase({name, spaces::LineSpace(32, 1.0, alpha), 1.0 / alpha}, table);
  }
  {
    const auto pts = geom::SampleGrid(49, 6.0, 6.0);
    RunCase({"grid7x7 a=4", core::DecaySpace::Geometric(pts, 4.0), 0.5},
            table);
    RunCase({"grid7x7 a=3", core::DecaySpace::Geometric(pts, 3.0), 2.0 / 3.0},
            table);
  }
  table.Print();

  std::printf(
      "\nExpected shape: the bound holds on every row; slack shrinks as A "
      "approaches 1\n(the plane at alpha just above 2 is the tight regime, "
      "matching the alpha > 2 requirement\nfor planar distributed "
      "algorithms).\n");
  return 0;
}
