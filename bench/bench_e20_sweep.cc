// E20 -- sweep engine: parameter-grid throughput over shared kernel arenas.
//
// Two measurements, both gated on bit-identical results:
//
//  1. Grid A/B: one 3-axis sweep (links x alpha x power policy) runs twice,
//     once with per-worker sinr::KernelArena reuse (every instance kernel
//     rebuilt into a warm slab) and once with per-instance allocation.
//     Reports end-to-end cells/sec for both.  Each cell also pays instance
//     generation (space sampling + the O(n^2 log n) link pairing), which
//     bounds how much of the end-to-end time the arena can touch.
//  2. Kernel-rebuild A/B: for the largest cell shape, the same kernel is
//     rebuilt many times through an arena vs freshly constructed -- the
//     isolated cost of exactly what the arena replaces (alloc + clear vs
//     overwrite-in-place), reported as rebuilds/sec.
//  3. Instance-generation A/B: a power/beta-only grid at n = 2 * gen-links
//     nodes isolates what a cell pays *before* any kernel or task runs --
//     space sampling + link pairing -- in three modes: the old path (fresh
//     build per cell, sort-greedy pairing), grid/MNN pairing alone, and the
//     shared GeometryCache (the sweep runner's default).  Untimed warm-up
//     passes precede the timing, and the full sweep is additionally run
//     through SweepRunner in new-vs-old mode with the signatures gated on
//     bit-equality.
//
// The deterministic sweep signatures of each A/B pair must be bit-identical
// (arena reuse, geometry reuse and the pairing route are invisible in the
// results) or the bench exits 1 before quoting any number.
//
// Flags: --instances <per cell> (default 6), --threads <pool size>
//        (default hardware), --repeat <timing passes, best-of> (default 3),
//        --gen-links <instance-generation A/B size> (default 512, i.e.
//        n = 1024 nodes), plus the obs::BenchHarness flags --json (write
//        BENCH_E20.json, schema v2: arena/malloc and instance-generation
//        phases with dispersion stats and obs counter deltas),
//        --reps/--warmup/--min-time-ms (sampling for the Time()d phases;
//        the grid A/B's samples come from its own --repeat loop).
//
// Run in a Release build; the Assert build's DL_CHECK instrumentation
// dominates the kernel builds.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "engine/scenario.h"
#include "obs/bench_harness.h"
#include "sinr/kernel.h"
#include "sweep/sweep.h"
#include "sweep/sweep_report.h"
#include "sweep/sweep_runner.h"
#include "tool_args.h"

using namespace decaylib;

namespace {

// The instance-generation A/B grid: every axis non-geometric (power policy
// x SINR threshold), so one sampled geometry generation serves the whole
// grid and the A/B isolates exactly the tentpole's two levers.
sweep::SweepSpec GenSpec(int links, int instances) {
  sweep::SweepSpec spec;
  spec.name = "e20_instance_gen";
  spec.base.name = "e20_instance_gen";
  spec.base.topology = "uniform";
  spec.base.links = links;
  spec.base.instances = instances;
  spec.base.seed = 2021;
  spec.axes = {{"power_tau", {0.0, 0.5, 1.0}}, {"beta", {1.0, 1.5}}};
  spec.tasks = {engine::TaskKind::kGreedyBaseline};
  return spec;
}

sweep::SweepSpec GridSpec(int instances) {
  sweep::SweepSpec spec;
  spec.name = "e20_grid";
  spec.base.name = "e20_grid";
  spec.base.topology = "uniform";
  spec.base.instances = instances;
  spec.base.seed = 2020;
  // n x alpha x power policy (uniform / mean / linear).
  spec.axes = {{"links", {64, 96, 128}},
               {"alpha", {2.5, 3.0, 3.5}},
               {"power_tau", {0.0, 0.5, 1.0}}};
  spec.tasks = {engine::TaskKind::kAlgorithm1,
                engine::TaskKind::kGreedyBaseline};
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  int instances = 6;
  int threads = 0;  // 0 = hardware concurrency (explicit values >= 1)
  int repeat = 3;
  int gen_links = 512;  // instance-gen A/B size: n = 2 * gen_links nodes
  bool parse_ok = true;
  for (int i = 1; i < argc && parse_ok; ++i) {
    bool harness_flag_value = false;
    if (std::strcmp(argv[i], "--instances") == 0 && i + 1 < argc) {
      parse_ok = tools::ParseIntFlag("--instances", argv[++i], 1, 1 << 20,
                                     &instances);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      parse_ok = tools::ParseIntFlag("--threads", argv[++i], 1, 1 << 16,
                                     &threads);
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      parse_ok = tools::ParseIntFlag("--repeat", argv[++i], 1, 1000, &repeat);
    } else if (std::strcmp(argv[i], "--gen-links") == 0 && i + 1 < argc) {
      parse_ok = tools::ParseIntFlag("--gen-links", argv[++i], 2, 1 << 16,
                                     &gen_links);
    } else if (obs::BenchHarness::IsHarnessFlag(argv[i],
                                                &harness_flag_value)) {
      if (harness_flag_value) ++i;  // the harness validates the value
    } else {
      parse_ok = false;
    }
  }
  obs::BenchHarness report("E20", argc, argv);
  if (!parse_ok || !report.args_ok()) {
    std::fprintf(stderr,
                 "usage: %s [--instances K] [--threads T] [--repeat R] "
                 "[--gen-links L] [--json] [--reps N] [--warmup N] "
                 "[--min-time-ms T]\n",
                 argv[0]);
    return 2;
  }

  bench::Banner("E20", "Sweep engine: grid throughput over kernel arenas",
                "one parameter grid, kernels rebuilt into warm per-worker "
                "arenas vs per-instance allocation; identical results, "
                "higher cells/sec");

  const sweep::SweepSpec spec = GridSpec(instances);
  std::printf("\n%lld cells (links x alpha x power_tau) x %d instances\n\n",
              sweep::GridSize(spec), instances);

  sweep::SweepConfig arena_config;
  arena_config.threads = threads;
  arena_config.reuse_arena = true;
  sweep::SweepConfig malloc_config = arena_config;
  malloc_config.reuse_arena = false;

  // Untimed warm-up pass (allocator, page cache): without it the first
  // timed mode pays the cold start alone and the A/B is biased, visibly so
  // at --repeat 1.  Its result also supplies the per-instance signature for
  // the bit-transparency gate.
  const std::string malloc_signature =
      sweep::SweepSignature(sweep::SweepRunner(malloc_config).Run(spec));

  // Best-of-R timing, alternating modes so neither systematically runs on
  // a warmer machine than the other.  Each mode's per-pass wall times feed
  // the harness as one multi-sample phase, with the obs counter deltas
  // (arena_rebuilds, geometry_reuses, ...) accumulated per mode.
  const auto merge = [](std::map<std::string, long long>& into,
                        std::map<std::string, long long> delta) {
    for (const auto& [name, value] : delta) into[name] += value;
  };
  sweep::SweepResult arena_result;
  std::vector<double> arena_samples;
  std::vector<double> malloc_samples;
  std::map<std::string, long long> arena_counters;
  std::map<std::string, long long> malloc_counters;
  for (int r = 0; r < repeat; ++r) {
    {
      obs::ScopedCounterCapture capture;
      sweep::SweepResult a = sweep::SweepRunner(arena_config).Run(spec);
      merge(arena_counters, capture.Take());
      arena_samples.push_back(a.wall_ms);
      if (r == 0) arena_result = std::move(a);
    }
    {
      obs::ScopedCounterCapture capture;
      const sweep::SweepResult m = sweep::SweepRunner(malloc_config).Run(spec);
      merge(malloc_counters, capture.Take());
      malloc_samples.push_back(m.wall_ms);
    }
  }
  const double arena_ms =
      *std::min_element(arena_samples.begin(), arena_samples.end());
  const double malloc_ms =
      *std::min_element(malloc_samples.begin(), malloc_samples.end());

  if (sweep::SweepSignature(arena_result) != malloc_signature) {
    std::printf(
        "ERROR: sweep signature differs between arena and per-instance "
        "kernels -- arena reuse is not bit-transparent\n");
    return 1;
  }

  sweep::PrintSweepReport(arena_result);

  const double cells = static_cast<double>(arena_result.cells.size());
  const double arena_cps = 1000.0 * cells / arena_ms;
  const double malloc_cps = 1000.0 * cells / malloc_ms;
  std::printf(
      "\narena reuse:   %s cells/s (%s ms best of %d, %lld kernel rebuilds "
      "through %s)\n",
      bench::Fmt(arena_cps, 2).c_str(), bench::Fmt(arena_ms, 1).c_str(),
      repeat, arena_result.arena_rebuilds, "per-worker arenas");
  std::printf("per-instance:  %s cells/s (%s ms best of %d)\n",
              bench::Fmt(malloc_cps, 2).c_str(),
              bench::Fmt(malloc_ms, 1).c_str(), repeat);
  std::printf("reuse speedup: %sx (results bit-identical)\n",
              bench::Fmt(malloc_ms / arena_ms, 3).c_str());

  report.AddSamples("sweep_arena", static_cast<long long>(cells),
                    arena_samples, std::move(arena_counters));
  report.AddSamples("sweep_malloc", static_cast<long long>(cells),
                    malloc_samples, std::move(malloc_counters));

  // Isolated kernel-rebuild A/B at the largest cell shape: the cost of
  // exactly what the arena replaces, free of instance generation and task
  // time.
  {
    engine::ScenarioSpec shape = spec.base;
    const sweep::SweepAxis& links_axis = spec.axes.front();
    shape.links = static_cast<int>(links_axis.values.back());
    const engine::ScenarioInstance inst = engine::BuildInstance(shape, 0);
    const int reps = 60;

    // Untimed warm-up build, for the same cold-start reason as above.
    {
      const sinr::KernelCache warm(inst.system(), inst.power());
      volatile double sink = warm.LinkDecay(0);
      (void)sink;
    }

    const obs::SampleStats fresh_stats =
        report.Time("kernel_rebuild_fresh", shape.links, [&] {
          for (int r = 0; r < reps; ++r) {
            const sinr::KernelCache kernel(inst.system(), inst.power());
            volatile double sink = kernel.LinkDecay(0);
            (void)sink;
          }
        });
    const double fresh_ms = fresh_stats.min_ms;

    sinr::KernelArena arena;
    // The first Rebuild pays the slab allocations; keep it out of the
    // timing, matching the fresh path's untimed warm-up.
    arena.Rebuild(inst.system(), inst.power());
    const obs::SampleStats arena_stats =
        report.Time("kernel_rebuild_arena", shape.links, [&] {
          for (int r = 0; r < reps; ++r) {
            const sinr::KernelCache& kernel =
                arena.Rebuild(inst.system(), inst.power());
            volatile double sink = kernel.LinkDecay(0);
            (void)sink;
          }
        });
    const double arena_rebuild_ms = arena_stats.min_ms;

    std::printf(
        "\nkernel rebuild at n=%d: %s/s through arena vs %s/s fresh "
        "(%sx per-build speedup)\n",
        shape.links, bench::Fmt(1000.0 * reps / arena_rebuild_ms, 1).c_str(),
        bench::Fmt(1000.0 * reps / fresh_ms, 1).c_str(),
        bench::Fmt(fresh_ms / arena_rebuild_ms, 3).c_str());
  }

  // Instance-generation A/B on a power/beta-only grid: the cost of getting
  // from a cell spec to a configured ScenarioInstance, with no kernels and
  // no tasks in the way.
  {
    const int gen_instances = 2;
    const sweep::SweepSpec gen = GenSpec(gen_links, gen_instances);
    const std::vector<sweep::SweepCell> cells = sweep::ExpandGrid(gen);
    const double cell_count = static_cast<double>(cells.size());

    const auto generation_pass = [&](bool use_cache,
                                     engine::PairingMode pairing) {
      engine::GeometryCache cache;
      bench::WallTimer timer;
      for (const sweep::SweepCell& cell : cells) {
        if (use_cache) cache.Prepare(cell.spec);
        for (int i = 0; i < gen_instances; ++i) {
          const engine::ScenarioInstance inst =
              use_cache ? engine::ConfigureInstance(
                              cell.spec, cache.Acquire(cell.spec, i, pairing))
                        : engine::BuildInstance(cell.spec, i, pairing);
          volatile double sink = inst.power()[0];
          (void)sink;
        }
      }
      return timer.ElapsedMs();
    };

    // Untimed warm-up (allocator, page cache) of the heaviest mode; every
    // timed pass below then starts from the same warmed state.  The cached
    // pass uses a fresh GeometryCache, so its timing includes the one cold
    // generation a real sweep pays.
    generation_pass(false, engine::PairingMode::kSortGreedy);

    const double sort_ms =
        report
            .Time("instance_gen_sort", gen_links,
                  [&] { generation_pass(false,
                                        engine::PairingMode::kSortGreedy); })
            .min_ms;
    const double grid_ms =
        report
            .Time("instance_gen_grid_pairing", gen_links,
                  [&] { generation_pass(false, engine::PairingMode::kAuto); })
            .min_ms;
    const double cached_ms =
        report
            .Time("instance_gen_geometry_cache", gen_links,
                  [&] { generation_pass(true, engine::PairingMode::kAuto); })
            .min_ms;

    std::printf(
        "\ninstance generation at n=%d nodes, %zu-cell power/beta grid x %d "
        "instances:\n"
        "  old (per-cell build, sort pairing):  %s ms/cell\n"
        "  grid/MNN pairing, no cache:          %s ms/cell (%sx)\n"
        "  geometry cache + grid pairing:       %s ms/cell (%sx)\n",
        2 * gen_links, cells.size(), gen_instances,
        bench::Fmt(sort_ms / cell_count, 2).c_str(),
        bench::Fmt(grid_ms / cell_count, 2).c_str(),
        bench::Fmt(sort_ms / grid_ms, 2).c_str(),
        bench::Fmt(cached_ms / cell_count, 2).c_str(),
        bench::Fmt(sort_ms / cached_ms, 2).c_str());

    // Bit-transparency gate for the whole new path: the grid through the
    // sweep runner with geometry cache + grid pairing must reproduce the
    // un-cached, sort-greedy signature exactly.
    sweep::SweepConfig new_path;
    new_path.threads = threads;
    sweep::SweepConfig old_path = new_path;
    old_path.reuse_geometry = false;
    old_path.pairing = engine::PairingMode::kSortGreedy;
    const sweep::SweepResult new_run = sweep::SweepRunner(new_path).Run(gen);
    const sweep::SweepResult old_run = sweep::SweepRunner(old_path).Run(gen);
    if (sweep::SweepSignature(new_run) != sweep::SweepSignature(old_run)) {
      std::printf(
          "ERROR: sweep signature differs between the geometry-cache/grid-"
          "pairing path and the un-cached sort-greedy path\n");
      return 1;
    }
    std::printf(
        "  sweep signatures bit-identical (new vs old path; %lld geometries "
        "built / %lld reused)\n",
        new_run.geometry_builds, new_run.geometry_reuses);
  }
  return report.Close();
}
