// E14 -- Dynamic packet scheduling / stability (transfer list [2, 3, 44]).
//
// Sweeps the uniform arrival rate over planar deployments and over a walled
// version of the same deployment: the stability frontier (where backlog
// starts growing) contracts as zeta grows, and backlog-aware scheduling
// dominates oblivious greedy near the frontier.  Also reports the measured
// inductive independence, the parameter the [44]-style analyses charge
// against.
#include <cstdio>

#include "bench_util.h"
#include "capacity/inductive_independence.h"
#include "core/metricity.h"
#include "dynamics/queue_system.h"
#include "env/propagation.h"
#include "sinr/kernel.h"
#include "sinr/power.h"

using namespace decaylib;

int main() {
  bench::Banner("E14", "Dynamic packet scheduling stability",
                "stability analyses transfer with alpha -> zeta; rho "
                "(inductive independence) is the knob");

  geom::Rng rng(3);
  bench::PlanarDeployment dep(20, 22.0, 0.6, 1.2, rng);

  struct SpaceCase {
    const char* name;
    core::DecaySpace space;
  };
  std::vector<SpaceCase> cases;
  {
    env::PropagationConfig config;
    config.alpha = 3.0;
    cases.push_back({"free space",
                     env::BuildDecaySpace(env::Environment(), config,
                                          env::PlaceIsotropic(dep.points))});
    env::Environment office = env::Environment::OfficeGrid(22.0, 22.0, 3, 3);
    cases.push_back({"office 3x3",
                     env::BuildDecaySpace(office, config,
                                          env::PlaceIsotropic(dep.points))});
  }

  for (const SpaceCase& c : cases) {
    const sinr::LinkSystem system(c.space, dep.links, {2.0, 0.0});
    // One kernel per space serves every (lambda, scheduler) simulation
    // below; the LinkSystem entry point would rebuild it per call.
    const sinr::KernelCache kernel(system, sinr::UniformPower(system));
    const double zeta = std::max(1.0, core::Metricity(c.space));
    const auto rho = capacity::EstimateInductiveIndependence(
        system, sinr::UniformPower(system));
    std::printf("\n%s: zeta = %.2f, rho in [%.2f, %.2f]\n", c.name, zeta,
                rho.greedy_lower, rho.upper);
    bench::Table table({"lambda/link", "offered", "LQF tput", "LQF queue",
                        "LQF growth", "greedy tput", "greedy queue",
                        "rand tput"});
    for (const double lambda : {0.02, 0.05, 0.10, 0.20, 0.35, 0.50}) {
      geom::Rng r1(11);
      geom::Rng r2(11);
      geom::Rng r3(11);
      const auto lqf = dynamics::RunQueueSimulation(
          kernel,
          dynamics::UniformArrivals(system, lambda,
                                    dynamics::Scheduler::kLongestQueueFirst,
                                    4000),
          r1);
      const auto greedy = dynamics::RunQueueSimulation(
          kernel,
          dynamics::UniformArrivals(system, lambda,
                                    dynamics::Scheduler::kGreedyByDecay, 4000),
          r2);
      const auto rnd = dynamics::RunQueueSimulation(
          kernel,
          dynamics::UniformArrivals(system, lambda,
                                    dynamics::Scheduler::kRandomAccess, 4000),
          r3);
      table.AddRow({bench::Fmt(lambda, 2), bench::Fmt(lqf.offered_load, 2),
                    bench::Fmt(lqf.throughput, 2),
                    bench::Fmt(lqf.mean_queue, 1),
                    bench::Fmt(lqf.backlog_growth, 2),
                    bench::Fmt(greedy.throughput, 2),
                    bench::Fmt(greedy.mean_queue, 1),
                    bench::Fmt(rnd.throughput, 2)});
    }
    table.Print();
  }

  std::printf(
      "\nExpected shape: throughput tracks offered load until the stability "
      "frontier, then\nsaturates while queues and growth explode; the walled "
      "(higher-zeta) space saturates\nearlier; LQF sustains at least what "
      "oblivious greedy does.\n");
  return 0;
}
