// E19 -- scenario engine: batched multi-instance throughput over warm
// kernel caches.
//
// Pushes every builtin deployment scenario (uniform, clustered hotspots,
// highway corridor, heterogeneous-power grid, symmetric and asymmetric
// shadowing -- six distinct kinds) through one engine::BatchRunner: each
// instance's sinr::KernelCache is built once and Algorithm 1, the greedy
// baseline, weighted capacity, the Lemma 4.1 partition and full scheduling
// all run against the warm cache.  Reports per-scenario and aggregate
// batched throughput (instances/sec) and verifies that the deterministic
// aggregate report is bit-identical between the single-threaded and pooled
// runs before any number is quoted (exit 1 on divergence).
//
// Flags: --links <n per instance> (default 96), --instances <per scenario>
//        (default 6), --threads <pool size> (default hardware), --json
//        (write BENCH_E19.json: bench_util.h-format phases + per-scenario
//        aggregates).
//
// Run in a Release build; the Assert build's DL_CHECK instrumentation
// dominates the kernel builds.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/batch_runner.h"
#include "engine/report.h"
#include "engine/scenario.h"

using namespace decaylib;

int main(int argc, char** argv) {
  int links = 96;
  int instances = 6;
  int threads = 0;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--links") == 0 && i + 1 < argc) {
      links = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--instances") == 0 && i + 1 < argc) {
      instances = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--links N] [--instances K] [--threads T] "
                   "[--json]\n",
                   argv[0]);
      return 2;
    }
  }
  if (links < 2 || instances < 1) {
    std::fprintf(stderr, "need --links >= 2 and --instances >= 1\n");
    return 2;
  }

  bench::Banner("E19", "Scenario engine: batched multi-instance runner",
                "many heterogeneous deployments run through one warm-cache "
                "batch; aggregates are thread-count invariant");

  std::vector<engine::ScenarioSpec> specs = engine::BuiltinScenarios();
  for (engine::ScenarioSpec& spec : specs) {
    spec.links = links;
    spec.instances = instances;
  }
  std::printf("\n%zu scenario kinds x %d instances x %d links\n\n",
              specs.size(), instances, links);

  engine::BatchConfig pooled;
  // Pin the PR-2 task set (everything except kPowerControl, which joined
  // AllTasks later): BENCH_E19.json is a longitudinal throughput record,
  // and growing its workload would read as a perf regression.  The
  // power-control task has its own bench (E20) and CI gates.
  pooled.tasks = {engine::TaskKind::kAlgorithm1,
                  engine::TaskKind::kGreedyBaseline,
                  engine::TaskKind::kWeighted,
                  engine::TaskKind::kPartitions,
                  engine::TaskKind::kSchedule};
  // An explicit --threads is honoured for the quoted pooled timing; the
  // default pins at least 4 workers so the determinism check below
  // compares genuinely different interleavings even on single-core
  // machines.
  if (threads > 0) {
    pooled.threads = threads;
  } else {
    const unsigned hc = std::thread::hardware_concurrency();
    pooled.threads = static_cast<int>(hc > 4 ? hc : 4);
  }
  std::printf("pooled run: %d worker threads\n", pooled.threads);
  bench::WallTimer timer;
  const std::vector<engine::ScenarioResult> results =
      engine::BatchRunner(pooled).Run(specs);
  const double pooled_ms = timer.ElapsedMs();

  engine::BatchConfig serial = pooled;
  serial.threads = 1;
  timer.Reset();
  const std::vector<engine::ScenarioResult> reference =
      engine::BatchRunner(serial).Run(specs);
  const double serial_ms = timer.ElapsedMs();

  const bool gate_meaningful = pooled.threads > 1;
  if (gate_meaningful && engine::AggregateSignature(results) !=
                             engine::AggregateSignature(reference)) {
    std::printf(
        "ERROR: aggregate report differs between thread counts -- the "
        "batch runner is not deterministic\n");
    return 1;
  }

  engine::PrintReport(results);

  const double total_instances =
      static_cast<double>(specs.size()) * static_cast<double>(instances);
  std::printf(
      "\naggregate throughput: %s instances/s pooled (%s ms), "
      "%s instances/s single-threaded (%s ms)\n",
      bench::Fmt(1000.0 * total_instances / pooled_ms, 1).c_str(),
      bench::Fmt(pooled_ms, 1).c_str(),
      bench::Fmt(1000.0 * total_instances / serial_ms, 1).c_str(),
      bench::Fmt(serial_ms, 1).c_str());
  if (gate_meaningful) {
    std::printf("aggregates bit-identical across thread counts: yes\n");
  } else {
    std::printf(
        "determinism check skipped: --threads 1 makes both runs serial\n");
  }

  if (json && !engine::WriteJsonReport("E19", results)) return 1;
  return 0;
}
