// E19 -- scenario engine: batched multi-instance throughput over warm
// kernel caches.
//
// Pushes every builtin deployment scenario (uniform, clustered hotspots,
// highway corridor, heterogeneous-power grid, symmetric and asymmetric
// shadowing -- six distinct kinds) through one engine::BatchRunner: each
// instance's sinr::KernelCache is built once and Algorithm 1, the greedy
// baseline, weighted capacity, the Lemma 4.1 partition and full scheduling
// all run against the warm cache.  Reports per-scenario and aggregate
// batched throughput (instances/sec) and verifies that the deterministic
// aggregate report is bit-identical between the single-threaded and pooled
// runs before any number is quoted (exit 1 on divergence).
//
// Flags: --links <n per instance> (default 96), --instances <per scenario>
//        (default 6), --threads <pool size> (default hardware), plus the
//        obs::BenchHarness flags --json (write BENCH_E19.json, schema v2:
//        per-scenario batch/kernel_build/tasks phases, pooled/serial walls,
//        and a "scenarios" aggregate block), --reps/--warmup/--min-time-ms.
//
// Run in a Release build; the Assert build's DL_CHECK instrumentation
// dominates the kernel builds.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/batch_runner.h"
#include "engine/report.h"
#include "engine/scenario.h"
#include "obs/bench_harness.h"

using namespace decaylib;

int main(int argc, char** argv) {
  int links = 96;
  int instances = 6;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    bool harness_flag_value = false;
    if (std::strcmp(argv[i], "--links") == 0 && i + 1 < argc) {
      links = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--instances") == 0 && i + 1 < argc) {
      instances = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (obs::BenchHarness::IsHarnessFlag(argv[i],
                                                &harness_flag_value)) {
      if (harness_flag_value) ++i;  // the harness validates the value
    } else {
      std::fprintf(stderr,
                   "usage: %s [--links N] [--instances K] [--threads T] "
                   "[--json] [--reps N] [--warmup N] [--min-time-ms T]\n",
                   argv[0]);
      return 2;
    }
  }
  obs::BenchHarness report("E19", argc, argv);
  if (links < 2 || instances < 1 || !report.args_ok()) {
    std::fprintf(stderr, "need --links >= 2 and --instances >= 1\n");
    return 2;
  }

  bench::Banner("E19", "Scenario engine: batched multi-instance runner",
                "many heterogeneous deployments run through one warm-cache "
                "batch; aggregates are thread-count invariant");

  std::vector<engine::ScenarioSpec> specs = engine::BuiltinScenarios();
  for (engine::ScenarioSpec& spec : specs) {
    spec.links = links;
    spec.instances = instances;
  }
  std::printf("\n%zu scenario kinds x %d instances x %d links\n\n",
              specs.size(), instances, links);

  engine::BatchConfig pooled;
  // Pin the PR-2 task set (everything except kPowerControl, which joined
  // AllTasks later): BENCH_E19.json is a longitudinal throughput record,
  // and growing its workload would read as a perf regression.  The
  // power-control task has its own bench (E20) and CI gates.
  pooled.tasks = {engine::TaskKind::kAlgorithm1,
                  engine::TaskKind::kGreedyBaseline,
                  engine::TaskKind::kWeighted,
                  engine::TaskKind::kPartitions,
                  engine::TaskKind::kSchedule};
  // An explicit --threads is honoured for the quoted pooled timing; the
  // default pins at least 4 workers so the determinism check below
  // compares genuinely different interleavings even on single-core
  // machines.
  if (threads > 0) {
    pooled.threads = threads;
  } else {
    const unsigned hc = std::thread::hardware_concurrency();
    pooled.threads = static_cast<int>(hc > 4 ? hc : 4);
  }
  std::printf("pooled run: %d worker threads\n", pooled.threads);
  std::vector<engine::ScenarioResult> results;
  const double pooled_ms =
      report
          .Time("pooled_wall",
                static_cast<long long>(specs.size()) * instances,
                [&] { results = engine::BatchRunner(pooled).Run(specs); })
          .min_ms;

  engine::BatchConfig serial = pooled;
  serial.threads = 1;
  std::vector<engine::ScenarioResult> reference;
  const double serial_ms =
      report
          .Time("serial_wall",
                static_cast<long long>(specs.size()) * instances,
                [&] { reference = engine::BatchRunner(serial).Run(specs); })
          .min_ms;

  const bool gate_meaningful = pooled.threads > 1;
  if (gate_meaningful && engine::AggregateSignature(results) !=
                             engine::AggregateSignature(reference)) {
    std::printf(
        "ERROR: aggregate report differs between thread counts -- the "
        "batch runner is not deterministic\n");
    return 1;
  }

  engine::PrintReport(results);

  const double total_instances =
      static_cast<double>(specs.size()) * static_cast<double>(instances);
  std::printf(
      "\naggregate throughput: %s instances/s pooled (%s ms), "
      "%s instances/s single-threaded (%s ms)\n",
      bench::Fmt(1000.0 * total_instances / pooled_ms, 1).c_str(),
      bench::Fmt(pooled_ms, 1).c_str(),
      bench::Fmt(1000.0 * total_instances / serial_ms, 1).c_str(),
      bench::Fmt(serial_ms, 1).c_str());
  if (gate_meaningful) {
    std::printf("aggregates bit-identical across thread counts: yes\n");
  } else {
    std::printf(
        "determinism check skipped: --threads 1 makes both runs serial\n");
  }

  // One phase per scenario (batch wall / kernel build / task time, the
  // longitudinal throughput record), plus the deterministic aggregates as
  // the "scenarios" extra member.
  for (const engine::ScenarioResult& r : results) {
    report.Record(r.spec.name + ".batch", r.spec.links, r.batch_wall_ms);
    report.Record(r.spec.name + ".kernel_build", r.spec.links,
                  r.build_ms_total);
    report.Record(r.spec.name + ".tasks", r.spec.links, r.task_ms_total);
  }
  report.SetExtra("scenarios", engine::ScenariosJson(results));
  return report.Close();
}
