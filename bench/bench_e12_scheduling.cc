// E12 -- Scheduling and distributed contention resolution on decay spaces
// (the transfer list of Sec. 2.3).
//
// SCHEDULING by repeated capacity extraction and Kesselheim-Vocking-style
// contention resolution both carry over to decay spaces by Prop. 1; we
// measure schedule lengths and convergence slots across alpha and wall
// density.
#include <cstdio>

#include "bench_util.h"
#include "core/metricity.h"
#include "distributed/contention.h"
#include "env/propagation.h"
#include "scheduling/scheduler.h"
#include "sinr/power.h"

using namespace decaylib;

int main() {
  bench::Banner("E12", "Scheduling + contention resolution transfer",
                "schedule length and convergence track zeta (Prop. 1 "
                "transfer of [16,17,45])");

  {
    std::printf("\n(a) Schedule length across alpha (60 links, 24m box)\n\n");
    bench::Table table({"alpha", "zeta", "slots alg1", "slots greedy",
                        "valid"});
    for (const double alpha : {2.0, 3.0, 4.0, 6.0}) {
      geom::Rng rng(static_cast<std::uint64_t>(alpha * 19));
      bench::PlanarDeployment dep(60, 24.0, 0.5, 1.5, rng);
      const core::DecaySpace space =
          core::DecaySpace::Geometric(dep.points, alpha);
      const double zeta = std::max(1.0, core::Metricity(space));
      const sinr::LinkSystem system(space, dep.links, {1.0, 0.0});
      const auto s1 = scheduling::ScheduleLinks(
          system, zeta, scheduling::Extractor::kAlgorithm1);
      const auto s2 = scheduling::ScheduleLinks(
          system, zeta, scheduling::Extractor::kGreedyFeasible);
      const auto all = sinr::AllLinks(system);
      const bool valid = scheduling::ValidateSchedule(system, s1, all) &&
                         scheduling::ValidateSchedule(system, s2, all);
      table.AddRow({bench::Fmt(alpha, 1), bench::Fmt(zeta),
                    bench::FmtInt(s1.Length()), bench::FmtInt(s2.Length()),
                    valid ? "yes" : "NO"});
    }
    table.Print();
  }

  {
    std::printf("\n(b) Walls raise zeta and stretch schedules (40 links, "
                "alpha = 2.8)\n\n");
    bench::Table table({"rooms", "zeta", "slots greedy", "contention slots",
                        "completed"});
    geom::Rng rng(23);
    bench::PlanarDeployment dep(40, 24.0, 0.5, 1.2, rng);
    env::PropagationConfig config;
    config.alpha = 2.8;
    for (const int rooms : {0, 2, 4}) {
      env::Environment environment =
          rooms == 0 ? env::Environment()
                     : env::Environment::OfficeGrid(24.0, 24.0, rooms, rooms);
      const core::DecaySpace space = env::BuildDecaySpace(
          environment, config, env::PlaceIsotropic(dep.points));
      const double zeta = std::max(1.0, core::Metricity(space));
      const sinr::LinkSystem system(space, dep.links, {2.0, 0.0});
      const auto schedule = scheduling::ScheduleLinks(
          system, zeta, scheduling::Extractor::kGreedyFeasible);
      distributed::ContentionConfig contention;
      contention.max_slots = 200000;
      geom::Rng crng(31);
      const auto result =
          distributed::RunContentionResolution(system, contention, crng);
      table.AddRow({bench::FmtInt(rooms), bench::Fmt(zeta),
                    bench::FmtInt(schedule.Length()),
                    bench::FmtInt(result.slots),
                    result.completed ? "yes" : "NO"});
    }
    table.Print();
  }

  std::printf(
      "\nExpected shape: schedules validate on all rows; lengths grow with "
      "alpha (denser\nconflicts at fixed geometry) and with wall density "
      "(zeta up); contention resolution\ncompletes everywhere, slower in "
      "high-zeta environments.\n");
  return 0;
}
