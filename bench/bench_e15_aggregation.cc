// E15 -- Connectivity / aggregation (transfer list [51, 34, 31, 6]).
//
// Builds minimum-decay aggregation trees and convergecast schedules across
// node counts and environments.  The cited results put aggregation at
// polylog slots in fading metrics; here the slot count is measured directly
// against n and against the space's zeta.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "connectivity/aggregation.h"
#include "core/metricity.h"
#include "env/propagation.h"
#include "geom/samplers.h"

using namespace decaylib;

int main() {
  bench::Banner("E15", "Aggregation trees and convergecast slots",
                "connectivity/aggregation transfers with alpha -> zeta "
                "(polylog slots in fading spaces)");

  {
    std::printf("\n(a) Slots vs n (free space, alpha = 3, beta = 2)\n\n");
    bench::Table table({"n", "tree decay", "slots", "slots / lg^2 n",
                        "valid"});
    for (const int n : {8, 16, 32, 64, 128}) {
      geom::Rng rng(static_cast<std::uint64_t>(n));
      const auto pts = geom::SampleMinDistance(
          n, std::sqrt(static_cast<double>(n)) * 4.0,
          std::sqrt(static_cast<double>(n)) * 4.0, 1.0, rng);
      const core::DecaySpace space = core::DecaySpace::Geometric(pts, 3.0);
      const auto result =
          connectivity::ScheduleAggregation(space, 0, {2.0, 0.0});
      const double lg = std::log2(static_cast<double>(n));
      table.AddRow({bench::FmtInt(static_cast<long long>(pts.size())),
                    bench::Fmt(result.tree.total_decay, 1),
                    bench::FmtInt(result.slots),
                    bench::Fmt(result.slots / (lg * lg), 2),
                    result.convergecast_valid ? "yes" : "NO"});
    }
    table.Print();
  }

  {
    std::printf("\n(b) Slots vs environment (32 nodes, alpha = 2.8)\n\n");
    bench::Table table({"environment", "zeta", "tree decay", "slots",
                        "valid"});
    geom::Rng rng(5);
    const auto pts = geom::SampleMinDistance(32, 24.0, 24.0, 1.5, rng);
    const auto nodes = env::PlaceIsotropic(pts);
    env::PropagationConfig config;
    config.alpha = 2.8;
    for (const int rooms : {0, 2, 4}) {
      env::Environment environment =
          rooms == 0 ? env::Environment()
                     : env::Environment::OfficeGrid(24.0, 24.0, rooms, rooms);
      const core::DecaySpace space =
          env::BuildDecaySpace(environment, config, nodes);
      const auto result =
          connectivity::ScheduleAggregation(space, 0, {2.0, 1e-12});
      char name[32];
      std::snprintf(name, sizeof(name), rooms == 0 ? "free space"
                                                   : "office %dx%d",
                    rooms, rooms);
      table.AddRow({name, bench::Fmt(core::Metricity(space), 2),
                    bench::FmtSci(result.tree.total_decay),
                    bench::FmtInt(result.slots),
                    result.convergecast_valid ? "yes" : "NO"});
    }
    table.Print();
  }

  std::printf(
      "\nExpected shape: slots grow mildly (polylog-ish) in n, far below "
      "the trivial n-1;\nwalls raise zeta and the schedule length together; "
      "every schedule validates.\n");
  return 0;
}
