// E9 -- zeta vs the variant metricity phi (Sec. 4.2).
//
// The 3-point family f_ab = 1, f_bc = q, f_ac = 2q separates the two
// parameters: phi stays below 1 (phi_factor < 2) while
// zeta = Theta(log q / log log q) grows without bound.  We also verify the
// provable direction phi <= zeta on random spaces (the paper's own
// derivation f_uv <= 2^zeta (f_uw + f_wv); see metricity.h for the typo
// note).
#include <cstdio>

#include "bench_util.h"
#include "core/metricity.h"
#include "spaces/constructions.h"
#include "spaces/samplers.h"

using namespace decaylib;

int main() {
  bench::Banner("E9", "Separation of zeta from phi",
                "phi bounded while zeta = Theta(log q / log log q) "
                "unbounded (Sec. 4.2)");

  {
    std::printf("\n(a) The 3-point family across q\n\n");
    bench::Table table({"q", "phi_factor", "phi", "zeta",
                        "log q / log log q", "zeta / prediction"});
    for (const double q :
         {1e2, 1e4, 1e6, 1e8, 1e10, 1e12, 1e14, 1e16, 1e20, 1e24}) {
      const core::DecaySpace space = spaces::ZetaPhiTriple(q);
      const core::PhiResult phi = core::ComputePhi(space);
      const double zeta = core::Metricity(space);
      const double prediction = std::log(q) / std::log(std::log(q));
      table.AddRow({bench::FmtSci(q), bench::Fmt(phi.phi_factor),
                    bench::Fmt(phi.phi), bench::Fmt(zeta),
                    bench::Fmt(prediction), bench::Fmt(zeta / prediction)});
    }
    table.Print();
  }

  {
    std::printf("\n(b) phi <= zeta on random decay spaces (20 draws)\n\n");
    bench::Table table({"space", "draws", "max phi", "min zeta",
                        "phi <= zeta everywhere"});
    struct Case {
      const char* name;
      double spread;
      bool symmetric;
    };
    for (const Case c : {Case{"log-uniform s=100 sym", 100.0, true},
                         Case{"log-uniform s=1e4 sym", 1e4, true},
                         Case{"log-uniform s=1e4 asym", 1e4, false}}) {
      double max_phi = 0.0;
      double min_zeta = 1e18;
      bool ok = true;
      for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        geom::Rng rng(seed);
        const core::DecaySpace space =
            spaces::LogUniformSpace(8, c.spread, rng, c.symmetric);
        const double zeta = core::Metricity(space);
        const double phi = core::ComputePhi(space).phi;
        max_phi = std::max(max_phi, phi);
        min_zeta = std::min(min_zeta, zeta);
        if (zeta >= 1.0 && phi > zeta + 1e-9) ok = false;
      }
      table.AddRow({c.name, "20", bench::Fmt(max_phi), bench::Fmt(min_zeta),
                    ok ? "yes" : "NO"});
    }
    table.Print();
  }

  std::printf(
      "\nExpected shape: (a) phi_factor saturates below 2 while zeta climbs "
      "with q, within a\nconstant factor of log q / log log q; (b) phi <= "
      "zeta on every draw.\n");
  return 0;
}
