// E1 -- Metricity of geometric vs. realistic decay spaces (Def. 2.2).
//
// Regenerates the paper's foundational quantitative claims:
//  (a) in the geometric case f = d^alpha, zeta = alpha (exactly on collinear
//      instances, at most alpha on planar ones);
//  (b) obstructed/shadowed environments decorrelate decay from distance and
//      drive zeta above alpha -- the gap the decay-space model is for.
#include <cstdio>

#include "bench_util.h"
#include "core/metricity.h"
#include "env/propagation.h"
#include "geom/samplers.h"
#include "obs/bench_harness.h"
#include "spaces/constructions.h"
#include "spaces/samplers.h"

using namespace decaylib;

int main(int argc, char** argv) {
  obs::BenchHarness report("E01", argc, argv);
  if (!report.args_ok()) return 2;
  bench::Banner("E1", "Metricity of decay spaces",
                "zeta = alpha for geometric decay; walls/shadowing push zeta "
                "beyond alpha (Sec. 2.2 + sibling paper [24])");

  {
    bench::WallTimer timer;
    std::printf("\n(a) Collinear geometric spaces: zeta should equal alpha\n\n");
    bench::Table table({"alpha", "zeta(line)", "zeta(plane n=48)", "phi(line)"});
    for (const double alpha : {1.0, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0}) {
      const core::DecaySpace line = spaces::LineSpace(16, 1.0, alpha);
      geom::Rng rng(7);
      const auto pts = geom::SampleUniform(48, 12.0, 12.0, rng);
      const core::DecaySpace plane = core::DecaySpace::Geometric(pts, alpha);
      table.AddRow({bench::Fmt(alpha, 1), bench::Fmt(core::Metricity(line)),
                    bench::Fmt(core::Metricity(plane)),
                    bench::Fmt(core::ComputePhi(line).phi)});
    }
    table.Print();
    report.Record("collinear_sweep", 48, timer.ElapsedMs());
  }

  {
    bench::WallTimer timer;
    std::printf(
        "\n(b) Office environments: wall density sweep (alpha = 2.8, 32 "
        "nodes, 30m x 30m)\n\n");
    bench::Table table({"rooms", "walls", "zeta", "zeta/alpha", "phi",
                        "decay spread (lg)"});
    geom::Rng rng(11);
    const auto pts = geom::SampleUniform(32, 30.0, 30.0, rng);
    const auto nodes = env::PlaceIsotropic(pts);
    env::PropagationConfig config;
    config.alpha = 2.8;
    for (const int rooms : {0, 1, 2, 3, 4, 6}) {
      env::Environment environment =
          rooms == 0 ? env::Environment()
                     : env::Environment::OfficeGrid(30.0, 30.0, rooms, rooms);
      const core::DecaySpace space =
          env::BuildDecaySpace(environment, config, nodes);
      const double zeta = core::Metricity(space);
      table.AddRow({bench::FmtInt(rooms),
                    bench::FmtInt(static_cast<long long>(
                        environment.walls().size())),
                    bench::Fmt(zeta), bench::Fmt(zeta / config.alpha),
                    bench::Fmt(core::ComputePhi(space).phi),
                    bench::Fmt(std::log2(space.DecaySpread()))});
    }
    table.Print();
    report.Record("office_sweep", 32, timer.ElapsedMs());
  }

  {
    bench::WallTimer timer;
    std::printf("\n(c) Lognormal shadowing sweep (alpha = 3, 32 nodes)\n\n");
    bench::Table table({"sigma_dB", "zeta", "zeta/alpha"});
    geom::Rng rng(13);
    const auto pts = geom::SampleUniform(32, 15.0, 15.0, rng);
    for (const double sigma : {0.0, 2.0, 4.0, 6.0, 8.0, 12.0}) {
      geom::Rng shadow(17);
      const core::DecaySpace space =
          spaces::ShadowedGeometric(pts, 3.0, sigma, shadow, true);
      const double zeta = core::Metricity(space);
      table.AddRow({bench::Fmt(sigma, 1), bench::Fmt(zeta),
                    bench::Fmt(zeta / 3.0)});
    }
    table.Print();
    report.Record("shadowing_sweep", 32, timer.ElapsedMs());
  }

  std::printf(
      "\nExpected shape: (a) zeta(line) == alpha to solver precision and "
      "zeta(plane) <= alpha;\n(b,c) zeta rises monotonically with wall "
      "density / shadowing, exceeding alpha.\n");
  return report.Close();
}
