// E10 -- The Theorem 6 two-line construction (Appendix C).
//
// On a bounded-growth decay space (doubling A <= 2, independence dimension
// 3), capacity remains exactly MAX-IS under any power control, with
// phi_factor = O(n): exponential hardness in phi survives bounded growth.
#include <cstdio>

#include "bench_util.h"
#include "capacity/baselines.h"
#include "capacity/exact.h"
#include "core/dimensions.h"
#include "core/metricity.h"
#include "graph/generators.h"
#include "graph/independent_set.h"
#include "sinr/power.h"
#include "spaces/constructions.h"

using namespace decaylib;

int main() {
  bench::Banner("E10", "Theorem 6: two-line bounded-growth hardness",
                "capacity == MIS under any power; phi = O(lg n); "
                "independence dimension 3");

  {
    std::printf("\n(a) Structure of the construction across alpha (n = 10, "
                "G(n, 1/2))\n\n");
    bench::Table table({"alpha", "phi_factor", "2n (bound)", "indep dim",
                        "MIS", "CAP uniform", "CAP power-ctl", "match"});
    const int n = 10;
    for (const double alpha : {1.0, 2.0, 3.0}) {
      geom::Rng rng(static_cast<std::uint64_t>(alpha * 31));
      const graph::Graph g = graph::RandomGnp(n, 0.5, rng);
      const auto instance = spaces::Theorem6Instance(g, alpha);
      const sinr::LinkSystem system(instance.space,
                                    sinr::LinksFromPairs(instance.links),
                                    {1.0, 0.0});
      const auto mis = graph::MaxIndependentSet(g);
      const auto cap = capacity::ExactCapacityUniform(system);
      const auto all = sinr::AllLinks(system);
      const auto pc = capacity::ExactCapacityPowerControl(system, all);
      const core::PhiResult phi = core::ComputePhi(instance.space);
      const int dim = core::IndependenceDimension(instance.space);
      const bool match = cap.size() == mis.size() && pc.size() == mis.size();
      table.AddRow({bench::Fmt(alpha, 1), bench::Fmt(phi.phi_factor, 2),
                    bench::FmtInt(2 * n), bench::FmtInt(dim),
                    bench::FmtInt(static_cast<long long>(mis.size())),
                    bench::FmtInt(static_cast<long long>(cap.size())),
                    bench::FmtInt(static_cast<long long>(pc.size())),
                    match ? "yes" : "NO"});
    }
    table.Print();
  }

  {
    std::printf("\n(b) phi growth with n (alpha = 2)\n\n");
    bench::Table table({"n", "phi_factor", "phi", "lg(2n)", "greedy gap"});
    for (const int n : {8, 12, 16, 20}) {
      geom::Rng rng(static_cast<std::uint64_t>(n * 71));
      const graph::Graph g = graph::RandomGnp(n, 0.5, rng);
      const auto instance = spaces::Theorem6Instance(g, 2.0);
      const sinr::LinkSystem system(instance.space,
                                    sinr::LinksFromPairs(instance.links),
                                    {1.0, 0.0});
      const core::PhiResult phi = core::ComputePhi(instance.space);
      const auto opt = capacity::ExactCapacityUniform(system);
      const auto greedy = capacity::GreedyFeasible(system);
      table.AddRow({bench::FmtInt(n), bench::Fmt(phi.phi_factor, 2),
                    bench::Fmt(phi.phi, 3), bench::Fmt(std::log2(2.0 * n), 3),
                    bench::Fmt(static_cast<double>(opt.size()) /
                               std::max<std::size_t>(1, greedy.size()), 2)});
    }
    table.Print();
  }

  std::printf(
      "\nExpected shape: capacity == MIS on every row (both power regimes); "
      "independence\ndimension exactly 3; phi_factor grows linearly in n "
      "(phi ~ lg n) -- so any\nf(phi)-approximation would solve MAX-IS, "
      "reproducing the 2^{phi(1-o(1))} bound.\n");
  return 0;
}
